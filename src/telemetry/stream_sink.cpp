#include "telemetry/stream_sink.h"

#include <algorithm>
#include <ios>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "checkpoint/serializer.h"
#include "telemetry/metrics.h"

namespace greenhetero::telemetry {

namespace {

bool event_before(const TraceEvent& a, const TraceEvent& b) {
  if (a.sim_minutes != b.sim_minutes) return a.sim_minutes < b.sim_minutes;
  return a.rack_id < b.rack_id;
}

}  // namespace

StreamingTraceSink::StreamingTraceSink(StreamSinkConfig config,
                                       MetricsRegistry* metrics)
    : config_(std::move(config)), metrics_(metrics) {
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument(
        "stream sink: queue capacity must be positive");
  }
  if (!config_.resume) {
    out_.open(config_.path);
    if (!out_) {
      throw std::runtime_error("stream sink: cannot open '" +
                               config_.path.string() + "' for writing");
    }
    out_ << trace_header_json() << '\n';
  }
  writer_ = std::thread([this] { writer_loop(); });
}

StreamingTraceSink::~StreamingTraceSink() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; close() explicitly reports I/O errors.
  }
}

void StreamingTraceSink::push(std::vector<TraceEvent> events) {
  enqueue(std::move(events));
}

void StreamingTraceSink::push_merge(std::vector<TraceEvent> batch,
                                    double watermark) {
  if (pending_.empty()) {
    pending_ = std::move(batch);
  } else {
    pending_.reserve(pending_.size() + batch.size());
    for (TraceEvent& event : batch) pending_.push_back(std::move(event));
  }
  // Stable: (t, rack) ties are same-source events in emission order, and
  // epoch-major arrival keeps each source's events consecutive, so this
  // incremental sort reproduces the buffered writer's whole-run sort.
  std::stable_sort(pending_.begin(), pending_.end(), event_before);
  const auto split = std::lower_bound(
      pending_.begin(), pending_.end(), watermark,
      [](const TraceEvent& e, double w) { return e.sim_minutes < w; });
  if (split == pending_.begin()) return;
  std::vector<TraceEvent> ready;
  ready.reserve(static_cast<std::size_t>(split - pending_.begin()));
  for (auto it = pending_.begin(); it != split; ++it) {
    ready.push_back(std::move(*it));
  }
  pending_.erase(pending_.begin(), split);
  enqueue(std::move(ready));
}

void StreamingTraceSink::note_dropped(std::uint64_t dropped) {
  dropped_total_ += dropped;
}

void StreamingTraceSink::enqueue(std::vector<TraceEvent> events) {
  std::size_t offset = 0;
  while (offset < events.size()) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.size() >= config_.queue_capacity) {
      // Backpressure: the producer (the simulation) waits for the writer,
      // keeping sink memory capped at queue_capacity events.
      ++stalls_;
      if (metrics_ != nullptr) {
        metrics_->counter("gh_trace_stalls_total").increment();
      }
      space_cv_.wait(lock, [this] {
        return queue_.size() < config_.queue_capacity || failed_;
      });
    }
    throw_if_failed();
    const std::size_t room = config_.queue_capacity - queue_.size();
    const std::size_t take = std::min(room, events.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      queue_.push_back(std::move(events[offset + i]));
    }
    offset += take;
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
    if (metrics_ != nullptr) {
      metrics_->gauge("gh_trace_queue_depth")
          .set(static_cast<double>(queue_.size()));
      metrics_->counter("gh_trace_events_streamed_total")
          .increment(static_cast<double>(take));
      // Residency: the depth each producer batch left behind.  A
      // distribution living near the capacity bound means the writer, not
      // the simulation, is the bottleneck.  Wall-clock-dependent (the
      // writer drains asynchronously), so excluded from byte-identity
      // comparisons like the stall/depth series.
      metrics_->histogram("gh_trace_queue_residency", queue_depth_buckets())
          .observe(static_cast<double>(queue_.size()));
    }
    lock.unlock();
    work_cv_.notify_one();
  }
}

void StreamingTraceSink::writer_loop() {
  for (;;) {
    std::vector<TraceEvent> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || stop_; });
      if (queue_.empty() && stop_) return;
      batch.swap(queue_);
      writing_ = true;
    }
    space_cv_.notify_all();
    std::string buffer;
    for (const TraceEvent& event : batch) {
      buffer += event.to_json();
      buffer += '\n';
      last_written_t_ = event.sim_minutes;
    }
    out_ << buffer;
    const bool ok = static_cast<bool>(out_);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      events_written_ += batch.size();
      writing_ = false;
      if (!ok && !failed_) {
        failed_ = true;
        error_ = "stream sink: write to '" + config_.path.string() +
                 "' failed";
      }
    }
    // Wake a flush()er waiting for the drain (and, on failure, a stalled
    // producer that would otherwise wait forever).
    space_cv_.notify_all();
  }
}

void StreamingTraceSink::flush() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock,
                   [this] { return (queue_.empty() && !writing_) || failed_; });
    throw_if_failed();
  }
  // The writer is idle (queue empty and its last batch accounted), so the
  // stream is safe to touch from this thread; the mutex hand-off above
  // ordered its writes before ours.
  out_.flush();
  if (!out_) {
    throw std::runtime_error("stream sink: flush of '" +
                             config_.path.string() + "' failed");
  }
}

void StreamingTraceSink::close() {
  if (closed_) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  closed_ = true;
  if (!pending_.empty()) {
    // Callers always finish with watermark = +inf; a leftover means a bug
    // upstream, but losing events silently would be worse — write them.
    std::string buffer;
    for (const TraceEvent& event : pending_) {
      buffer += event.to_json();
      buffer += '\n';
      last_written_t_ = event.sim_minutes;
    }
    pending_.clear();
    out_ << buffer;
  }
  if (dropped_total_ > 0) {
    out_ << make_truncation_footer(last_written_t_, dropped_total_).to_json()
         << '\n';
  }
  out_.flush();
  const bool ok = static_cast<bool>(out_);
  out_.close();
  throw_if_failed();
  if (!ok) {
    throw std::runtime_error("stream sink: write to '" +
                             config_.path.string() + "' failed");
  }
}

std::uint64_t StreamingTraceSink::stalls() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stalls_;
}

std::uint64_t StreamingTraceSink::events_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_written_;
}

std::size_t StreamingTraceSink::peak_queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return peak_queue_depth_;
}

void StreamingTraceSink::throw_if_failed() {
  if (failed_) throw std::runtime_error(error_);
}

void StreamingTraceSink::save_state(checkpoint::Writer& w) {
  // flush() just ran: the queue is empty and the writer thread idle, so
  // out_/last_written_t_ are safe to read here and tellp() marks exactly
  // the bytes that are durable.
  w.u64(static_cast<std::uint64_t>(std::streamoff(out_.tellp())));
  w.f64(last_written_t_);
  w.u64(dropped_total_);
  w.seq(pending_.size());
  for (const TraceEvent& event : pending_) event.save_state(w);
  const std::lock_guard<std::mutex> lock(mutex_);
  w.u64(stalls_);
  w.u64(events_written_);
}

void StreamingTraceSink::load_state(checkpoint::Reader& r) {
  const std::uint64_t offset = r.u64();
  last_written_t_ = r.f64();
  dropped_total_ = r.u64();
  const std::size_t count = r.seq();
  pending_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    TraceEvent event;
    event.load_state(r);
    pending_.push_back(std::move(event));
  }
  const std::uint64_t stalls = r.u64();
  const std::uint64_t written = r.u64();
  // Drop whatever the crashed run appended past the checkpoint (possibly a
  // torn line) and continue from the durable watermark.
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(config_.path, ec);
  if (ec) {
    throw std::runtime_error("stream sink: cannot stat '" +
                             config_.path.string() + "': " + ec.message());
  }
  if (size < offset) {
    throw std::runtime_error(
        "stream sink: '" + config_.path.string() +
        "' is shorter than the checkpointed watermark — wrong file?");
  }
  std::filesystem::resize_file(config_.path, offset, ec);
  if (ec) {
    throw std::runtime_error("stream sink: cannot truncate '" +
                             config_.path.string() + "': " + ec.message());
  }
  out_.open(config_.path, std::ios::app);
  if (!out_) {
    throw std::runtime_error("stream sink: cannot reopen '" +
                             config_.path.string() + "' for append");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  stalls_ = stalls;
  events_written_ = written;
}

}  // namespace greenhetero::telemetry
