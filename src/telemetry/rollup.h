// Fixed-window telemetry rollups: the compact per-rack time series that
// keeps a datacenter-scale run analyzable without a full-detail trace.
//
// The simulator feeds one RollupSample per epoch; the aggregator buckets
// samples into consecutive [k*W, (k+1)*W) windows of the configured width
// and, when a sample crosses into the next window, closes the previous one
// into a WindowRecord: epoch count, mean EPU / shortfall / grid watts,
// health-state occupancy (epochs spent in each state), per-bucket loss-
// ledger means (when the ledger ran) and span duration p50/p99 (when spans
// ran — wall-clock, so rollups lose byte-determinism exactly like "span"
// events do).
//
// Each closed window is emitted as a "rollup" trace event stamped with the
// *closing* epoch's time (never a past timestamp, so the streaming sink's
// watermark merge stays correct) and retained — a run of days is only a
// handful of records per rack — so --rollup-out can write the series file
// (schema header + the same rollup JSON lines) after the run.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <optional>
#include <vector>

#include "telemetry/ledger.h"
#include "telemetry/tracing.h"

namespace greenhetero::telemetry {

/// One epoch's contribution, distilled from the EpochRecord + health state
/// (+ the loss record the ledger just closed, when enabled).
struct RollupSample {
  double t_min = 0.0;
  double epu = 0.0;
  double shortfall_w = 0.0;
  double grid_w = 0.0;
  int health_state = 0;  ///< static_cast<int>(HealthState)
  const EpochLossRecord* loss = nullptr;  ///< null without --ledger
};

/// A closed aggregation window.
struct RollupWindow {
  double start_min = 0.0;
  double end_min = 0.0;
  /// Timestamp the matching "rollup" trace event carried (the closing
  /// epoch's now); reused by write_jsonl so the series file's lines are
  /// byte-identical to the trace's.
  double emitted_t_min = 0.0;
  std::size_t epochs = 0;
  double epu_sum = 0.0;
  double shortfall_sum_w = 0.0;
  double grid_sum_w = 0.0;
  /// Epochs spent in each HealthState (normal/degraded/safe/recovering).
  std::array<std::size_t, 4> health_occupancy{};
  bool has_loss = false;
  std::array<double, kLossBucketCount> loss_sums_w{};
  std::size_t span_count = 0;
  double span_p50_ns = 0.0;
  double span_p99_ns = 0.0;

  /// The "rollup" event payload (means, not sums).
  [[nodiscard]] TraceFields to_trace_fields() const;
};

class Rollup {
 public:
  /// window_min <= 0 disables the aggregator (observe_* become no-ops).
  explicit Rollup(double window_min = 0.0);

  [[nodiscard]] bool enabled() const { return window_min_ > 0.0; }
  [[nodiscard]] double window_min() const { return window_min_; }
  [[nodiscard]] const std::vector<RollupWindow>& windows() const {
    return windows_;
  }

  /// Feed one epoch; returns the window this sample *closed* (to be
  /// emitted as a "rollup" trace event stamped `emitted_t_min`), if any.
  std::optional<RollupWindow> observe_epoch(const RollupSample& sample);

  /// Feed one completed span's wall duration (current window).
  void observe_span(double dur_ns);

  /// Close the trailing partial window at end of run (emitted_t stamped
  /// with `now_min`); returns it for emission, or nullopt if empty.
  std::optional<RollupWindow> flush(double now_min);

  /// Schema header + one rollup event line per closed window — the
  /// --rollup-out SERIES.jsonl format, itself a valid analyzer input.
  void write_jsonl(std::ostream& out, int rack_id) const;

  /// Checkpoint the open window's running sums, its pending span samples
  /// and the closed-window history (window_min comes from configuration).
  void save_state(checkpoint::Writer& w) const;
  void load_state(checkpoint::Reader& r);

 private:
  [[nodiscard]] RollupWindow close_window(double emitted_t);
  void open_window(double start_min);

  double window_min_;
  bool window_open_ = false;
  RollupWindow current_;
  std::vector<double> span_durs_ns_;  ///< current window, sorted at close
  std::vector<RollupWindow> windows_;
};

/// The "rollup" trace-event line for a closed window, as emitted both into
/// the live trace and into the --rollup-out series file.
[[nodiscard]] TraceEvent make_rollup_event(const RollupWindow& window,
                                           int rack_id);

}  // namespace greenhetero::telemetry
