// Timing probes: RAII stopwatches recording wall-clock nanoseconds into the
// ambient registry's latency histograms.
//
//   void Solver::solve(...) {
//     GH_PROBE("gh_solver_solve_ns");
//     ...
//   }
//
// Probes are the one place wall time enters telemetry; traces never carry
// it.  Configure with the CMake option GH_TELEMETRY (default ON):
// -DGH_TELEMETRY=OFF compiles every GH_PROBE to a no-op, so hot paths carry
// zero overhead — not even the clock reads — in stripped builds.
#pragma once

#include "telemetry/telemetry.h"

#if GH_TELEMETRY_ENABLED

#include <chrono>

namespace greenhetero::telemetry {

class ScopedTimer {
 public:
  explicit ScopedTimer(const char* histogram_name)
      : sink_(current()), name_(histogram_name) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (sink_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->metrics().latency(name_).observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Telemetry* sink_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace greenhetero::telemetry

#define GH_PROBE_CONCAT2(a, b) a##b
#define GH_PROBE_CONCAT(a, b) GH_PROBE_CONCAT2(a, b)
#define GH_PROBE(name)                                 \
  ::greenhetero::telemetry::ScopedTimer GH_PROBE_CONCAT( \
      gh_probe_, __LINE__) { name }

#else  // !GH_TELEMETRY_ENABLED

#define GH_PROBE(name) ((void)0)

#endif
