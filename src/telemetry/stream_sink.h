// Bounded-memory streaming trace sink.
//
// The buffered path (TraceRing::save_jsonl / Fleet::write_trace_jsonl)
// holds the whole run in memory and writes once at exit — fine for a day,
// hopeless for the ROADMAP's 10k-rack runs.  StreamingTraceSink instead
// drains events to the JSONL file as the run progresses: producers hand
// over batches at epoch barriers, a dedicated writer thread serializes and
// writes them, and a bounded queue between the two provides backpressure
// (a full queue blocks the producer and counts a stall) so memory stays
// capped at queue_capacity events no matter how long the run is.
//
// Byte-identity contract: the streamed file is byte-identical to what the
// buffered writer would have produced (header, event order, truncation
// footer) for any thread count.
//
//  - Single rack (RackSimulator::run): save_jsonl never sorts, so the sink
//    receives each epoch's events in emission order via push() and writes
//    them unmodified.
//  - Fleet: write_trace_jsonl stable-sorts the concatenation (coordinator
//    events, then racks 0..N-1) by (sim time, rack id).  The incremental
//    equivalent is push_merge(): at every epoch barrier the coordinator
//    drains all rings in that same order, appends to a pending buffer,
//    stable-sorts it and flushes the prefix strictly below the watermark
//    (the next epoch's start time).  Every event emitted while stepping
//    epoch e is stamped within [e_start, e_end) — fault events at substep
//    times, epoch_plan/loss_ledger/rollup at now(), the coordinator's
//    grid_share at e_start — so nothing older can arrive later, and rack
//    ids are unique per source, so (t, rack) ties are always same-source
//    and the stable sort preserves their emission order.  The incremental
//    merge therefore reproduces the whole-run sort exactly.
//
// Events are serialized on the writer thread, off the simulation's critical
// path; close() (or destruction) flushes the queue, appends a truncation
// footer if the producer reported ring drops, and joins the writer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/tracing.h"

namespace greenhetero::checkpoint {
class Writer;
class Reader;
}  // namespace greenhetero::checkpoint

namespace greenhetero::telemetry {

class MetricsRegistry;

struct StreamSinkConfig {
  std::filesystem::path path;
  /// Queue bound in events; a producer handing over a batch that would
  /// exceed it blocks until the writer catches up (one stall counted per
  /// wait).  Peak sink memory ~= queue_capacity * mean event bytes.
  std::size_t queue_capacity = 4096;
  /// Resume mode: the constructor neither opens the file nor writes the
  /// schema header; load_state() truncates the existing file back to the
  /// checkpointed durable offset and reopens it for append.  No events may
  /// be pushed before load_state() runs.
  bool resume = false;
};

class StreamingTraceSink {
 public:
  /// Opens the file and writes the schema header immediately; `metrics`
  /// (optional) receives gh_trace_queue_depth / gh_trace_stalls_total /
  /// gh_trace_events_streamed_total updates on every hand-off.
  explicit StreamingTraceSink(StreamSinkConfig config,
                              MetricsRegistry* metrics = nullptr);
  ~StreamingTraceSink();
  StreamingTraceSink(const StreamingTraceSink&) = delete;
  StreamingTraceSink& operator=(const StreamingTraceSink&) = delete;

  [[nodiscard]] const StreamSinkConfig& config() const { return config_; }

  /// Enqueue a batch in emission order (single-source path).  Blocks while
  /// the queue is full; events are written in hand-off order.
  void push(std::vector<TraceEvent> events);

  /// Multi-source path: append `batch` to the pending reorder buffer,
  /// stable-sort it by (sim time, rack id) and enqueue every event with
  /// sim time < `watermark`.  Call with the epoch-major concatenation of
  /// all sources' drains and watermark = next epoch start; finish with
  /// watermark = +infinity to flush the tail.
  void push_merge(std::vector<TraceEvent> batch, double watermark);

  /// Record ring evictions reported by the producer; a final
  /// trace_truncated footer (matching the buffered writer's) is appended
  /// at close when the total is non-zero.
  void note_dropped(std::uint64_t dropped);

  /// Block until every queued event reached the ofstream and flush it, so
  /// a reader opening the file sees everything handed over so far.
  void flush();

  /// Flush, append the truncation footer if drops were reported, join the
  /// writer thread and close the file.  Idempotent; the destructor calls
  /// it.  Throws on a writer I/O error (destructor swallows instead).
  void close();

  /// Backpressure accounting (also mirrored into the metrics registry).
  [[nodiscard]] std::uint64_t stalls() const;
  [[nodiscard]] std::uint64_t events_written() const;
  [[nodiscard]] std::size_t peak_queue_depth() const;

  /// Checkpoint the sink: the durable byte offset (caller MUST flush()
  /// immediately before, so the writer thread is idle and tellp() is the
  /// exact watermark), the footer bookkeeping and the push_merge reorder
  /// buffer.  Non-const because tellp() is not.
  void save_state(checkpoint::Writer& w);
  /// Restore a resume-mode sink: truncate the file back to the recorded
  /// offset (a crash may have appended a torn tail past the checkpoint)
  /// and reopen it for append.  Must run before any push.
  void load_state(checkpoint::Reader& r);

 private:
  void writer_loop();
  void enqueue(std::vector<TraceEvent> events);
  void throw_if_failed();

  StreamSinkConfig config_;
  MetricsRegistry* metrics_;
  std::ofstream out_;
  double last_written_t_ = 0.0;  ///< writer thread only, for the footer
  std::uint64_t dropped_total_ = 0;  ///< producer thread only

  /// Out-of-order buffer for push_merge (producer thread only); holds at
  /// most the events of one epoch barrier that sort at/after the
  /// watermark — in practice near-empty, since an epoch's events all
  /// precede the next epoch's start.
  std::vector<TraceEvent> pending_;

  mutable std::mutex mutex_;
  std::condition_variable space_cv_;  ///< producer: queue has room again
  std::condition_variable work_cv_;   ///< writer: events or stop arrived
  std::vector<TraceEvent> queue_;     ///< guarded by mutex_
  bool writing_ = false;  ///< writer holds a swapped-out batch mid-write
  bool stop_ = false;
  bool failed_ = false;
  std::string error_;
  std::uint64_t stalls_ = 0;
  std::uint64_t events_written_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::thread writer_;
  bool closed_ = false;
};

}  // namespace greenhetero::telemetry
