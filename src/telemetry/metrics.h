// Metrics registry (counters, gauges, histograms).
//
// The runtime surface the control loop reports into: every subsystem grabs a
// series by (name, labels) and bumps it.  Names and label strings are
// interned once, so steady-state updates are a map lookup and a double add —
// cheap enough for per-epoch paths (per-substep paths should batch).
//
// Histograms use *fixed, deterministic* bucket bounds chosen at registration
// (no adaptive resizing), so two runs of the same scenario always export the
// same bucket layout and snapshots diff cleanly.  Snapshots can be exported
// as Prometheus text or JSON; `reset()` zeroes values but keeps the interned
// registrations.
//
// Thread-safety: each rack owns its own Telemetry, but the fleet's worker
// pool may step two racks on different threads — and any registry could in
// principle be shared.  Counter/gauge updates are lock-free relaxed atomics
// (a plain add in the uncontended single-threaded case), histogram bins are
// guarded by a per-histogram mutex, and series registration/snapshotting by
// a registry mutex.  Series references returned by counter()/gauge()/
// histogram() stay valid for the registry's lifetime (std::map nodes never
// move), so steady-state updates never touch the registry lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace greenhetero::checkpoint {
class Writer;
class Reader;
}  // namespace greenhetero::checkpoint

namespace greenhetero::telemetry {

class TelemetryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// key=value pairs attached to one metric series (e.g. {{"case", "B"}}).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Deterministic double formatting shared by every exporter: integers print
/// without a fraction, everything else as shortest round-trippable decimal.
[[nodiscard]] std::string format_number(double value);

class Counter {
 public:
  /// Lock-free and safe against concurrent increments (a CAS loop; compiles
  /// to an uncontended add-and-store in the single-threaded case).
  void increment(double delta = 1.0) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }
  /// Checkpoint restore: overwrite the running total.
  void restore(double value) {
    value_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (cumulative export, Prometheus-style).  The bounds
/// are upper edges; an implicit +Inf bucket catches the overflow.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  /// Safe against concurrent observe() calls (per-histogram mutex).
  void observe(double value);
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) counts; size = upper_bounds().size() + 1,
  /// the last entry being the +Inf bucket.  This accessor (and count()/
  /// sum()) reads without the bin lock — use snapshot_into() when observers
  /// may still be running on other threads.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  /// Locked, mutually consistent copy of (buckets, count, sum) for
  /// exporters that may race with live observers.
  void snapshot_into(std::vector<std::uint64_t>& buckets,
                     std::uint64_t& count, double& sum) const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// q-quantile estimate (q in [0,1]) by linear interpolation over the
  /// cumulative bucket counts, Prometheus histogram_quantile style: the
  /// answer lands inside the bucket containing rank q*count, interpolated
  /// between its edges.  NaN when empty; the +Inf bucket clamps to the
  /// largest finite bound.
  [[nodiscard]] double quantile(double q) const;
  void reset();
  /// Checkpoint restore: overwrite bins/count/sum.  `buckets.size()` must
  /// equal upper_bounds().size() + 1 (throws TelemetryError otherwise).
  void restore(const std::vector<std::uint64_t>& buckets, std::uint64_t count,
               double sum);

 private:
  std::vector<double> bounds_;  ///< sorted, strictly increasing
  /// Guards counts_/count_/sum_ against concurrent observers; behind a
  /// unique_ptr so the Histogram stays movable.
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Default bounds for wall-clock probes: 1 us to ~4 s in powers of two
/// (nanoseconds).  Fixed so latency exports are comparable across runs.
[[nodiscard]] std::span<const double> latency_buckets_ns();

/// Default bounds for power prediction errors (watts, decade steps).
[[nodiscard]] std::span<const double> watt_buckets();

/// Default bounds for queue-occupancy histograms (events, powers of two up
/// to the streaming sink's default capacity).
[[nodiscard]] std::span<const double> queue_depth_buckets();

/// The interpolation underlying Histogram::quantile, usable on snapshot
/// payloads (bounds + per-bucket counts) after the live histogram is gone.
[[nodiscard]] double histogram_quantile(std::span<const double> bounds,
                                        std::span<const std::uint64_t> buckets,
                                        double q);

/// "742ns" / "3.1us" / "12ms" / "1.5s" — scaled display of a nanosecond
/// duration, shared by the human metrics dump and the analyzer tables.
[[nodiscard]] std::string format_duration_ns(double ns);

/// Names of every metric the stack itself registers (sorted).  `greenhetero
/// info` reports the catalog size so users can tell a quiet run from a
/// -DGH_TELEMETRY=OFF build.
[[nodiscard]] std::span<const std::string_view> builtin_metrics();

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricKind kind);

/// One exported series, value(s) frozen at snapshot time.
struct SnapshotEntry {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  ///< counter / gauge
  // Histogram payload (empty otherwise).
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<SnapshotEntry> entries;  ///< sorted by (name, labels)

  [[nodiscard]] const SnapshotEntry* find(std::string_view name,
                                          const Labels& labels = {}) const;
  /// Prometheus text exposition format.
  [[nodiscard]] std::string to_prometheus() const;
  /// One JSON object per series under a top-level "metrics" array.
  [[nodiscard]] std::string to_json() const;
  /// Aligned human-readable table; histograms show count/mean/p50/p90/p99.
  [[nodiscard]] std::string to_human() const;
};

/// Write a snapshot to `path`, format chosen by extension: ".json" JSON,
/// ".txt" the human table, anything else Prometheus text.  Writes a
/// sibling temp file first and renames it into place, so the periodic
/// mid-run flush (SimConfig/FleetConfig metrics_flush_every) always leaves
/// a complete snapshot on disk even if the run dies mid-write.
///
/// With `human_sibling` set (the run loops' flush path), a machine-format
/// `path` additionally refreshes the human-readable table at the same path
/// with a ".txt" extension — same atomic-write discipline — so the dump a
/// human tails mid-run never goes stale while the JSON snapshot advances.
/// A `path` that is already ".txt" writes one file, not two.
void save_metrics(const MetricsSnapshot& snapshot,
                  const std::filesystem::path& path,
                  bool human_sibling = false);

/// Checkpoint serialization of a frozen snapshot (the registry itself
/// round-trips as snapshot() -> save -> load -> restore()).
void save_state(checkpoint::Writer& w, const MetricsSnapshot& snapshot);
void load_state(checkpoint::Reader& r, MetricsSnapshot& snapshot);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Fetch-or-create.  A series keeps its identity for the registry's
  /// lifetime; re-requesting with a different kind (or different histogram
  /// bounds) throws TelemetryError.
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds,
                       const Labels& labels = {});
  /// Wall-clock probe histogram (latency_buckets_ns bounds).
  Histogram& latency(std::string_view name, const Labels& labels = {});

  [[nodiscard]] std::size_t series_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return series_.size();
  }
  /// Distinct strings interned so far (names + label keys/values) — exposed
  /// so tests can pin the interning behaviour.
  [[nodiscard]] std::size_t interned_strings() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return intern_table_.size();
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every series; registrations (and interned strings) survive.
  void reset();
  /// Checkpoint restore: re-register every series in `snapshot` (fetch-or-
  /// create, so pre-registered series keep their identity) and overwrite its
  /// value(s).  Series not present in the snapshot are left untouched.
  void restore(const MetricsSnapshot& snapshot);

 private:
  struct Series {
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    std::vector<Histogram> histogram;  ///< 0 or 1 entry (keeps Series movable)
  };
  /// (interned name id, interned label ids) — cheap ordered map key.
  using SeriesKey = std::pair<std::uint32_t, std::vector<std::uint32_t>>;

  /// Caller must hold mutex_.
  [[nodiscard]] std::uint32_t intern(std::string_view s);

  /// Guards registration (the maps) and snapshotting; series *updates* go
  /// through the atomic/mutexed series objects and never take this lock.
  mutable std::mutex mutex_;
  std::vector<std::string> interned_;  ///< id -> string (stable storage)
  std::map<std::string, std::uint32_t, std::less<>> intern_table_;
  std::map<SeriesKey, Series> series_;
};

}  // namespace greenhetero::telemetry
