#include "telemetry/profiler.h"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <new>
#include <string_view>

#include "telemetry/metrics.h"
#include "telemetry/tracing.h"
#include "util/atomic_file.h"

namespace greenhetero::telemetry {

namespace {

// Constant-initialised (no TLS guard) so the allocation hooks below may
// touch them at any point, including during static initialisation.
thread_local std::uint64_t g_alloc_bytes = 0;
thread_local std::uint64_t g_alloc_count = 0;

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t thread_cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
#endif
  return 0;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_i64(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

}  // namespace

ThreadAllocCounters thread_alloc_counters() {
  return ThreadAllocCounters{g_alloc_bytes, g_alloc_count};
}

void Profiler::begin(const char* name) {
  if (!enabled_) return;
  Frame frame;
  frame.path_len = path_.size();
  if (!path_.empty()) path_ += '/';
  path_ += name;
  frame.node = &nodes_[path_];
  stack_.push_back(frame);
  Frame& f = stack_.back();
  // Baselines last: everything above (path growth, node insertion, the
  // stack push) is charged to the parent frame, not this one.
  f.bytes_begin = g_alloc_bytes;
  f.count_begin = g_alloc_count;
  f.cpu_begin = thread_cpu_now_ns();
  f.wall_begin = wall_now_ns();
}

void Profiler::end() {
  if (!enabled_ || stack_.empty()) return;
  const std::int64_t wall_end = wall_now_ns();
  const std::int64_t cpu_end = thread_cpu_now_ns();
  const Frame f = stack_.back();
  const std::int64_t dw = wall_end - f.wall_begin;
  const std::int64_t dc = cpu_end - f.cpu_begin;
  const std::uint64_t db = g_alloc_bytes - f.bytes_begin;
  const std::uint64_t dn = g_alloc_count - f.count_begin;
  ProfileNode& node = *f.node;
  node.calls += 1;
  node.wall_ns += dw;
  node.cpu_ns += dc;
  node.alloc_bytes += db;
  node.alloc_count += dn;
  node.self_wall_ns += dw - f.child_wall;
  node.self_cpu_ns += dc - f.child_cpu;
  node.self_alloc_bytes += db - f.child_bytes;
  node.self_alloc_count += dn - f.child_count;
  stack_.pop_back();
  path_.resize(f.path_len);
  if (!stack_.empty()) {
    Frame& parent = stack_.back();
    parent.child_wall += dw;
    parent.child_cpu += dc;
    parent.child_bytes += db;
    parent.child_count += dn;
  }
}

void Profiler::clear() {
  nodes_.clear();
  stack_.clear();
  path_.clear();
}

void merge_profile(ProfileReport& into, const ProfileReport& from) {
  for (const auto& [path, node] : from) {
    ProfileNode& dst = into[path];
    dst.calls += node.calls;
    dst.wall_ns += node.wall_ns;
    dst.cpu_ns += node.cpu_ns;
    dst.self_wall_ns += node.self_wall_ns;
    dst.self_cpu_ns += node.self_cpu_ns;
    dst.alloc_bytes += node.alloc_bytes;
    dst.alloc_count += node.alloc_count;
    dst.self_alloc_bytes += node.self_alloc_bytes;
    dst.self_alloc_count += node.self_alloc_count;
  }
}

std::string profile_to_json(const ProfileReport& report) {
  std::string out = "{\"schema\":\"greenhetero.profile\",\"version\":1,";
  out += "\"phases\":[";
  bool first = true;
  for (const auto& [path, node] : report) {
    if (!first) out += ',';
    first = false;
    std::string_view leaf = path;
    int depth = 0;
    if (const std::size_t slash = path.rfind('/');
        slash != std::string::npos) {
      leaf = std::string_view(path).substr(slash + 1);
      for (char c : path) depth += c == '/' ? 1 : 0;
    }
    out += "\n{\"path\":";
    append_json_escaped(out, path);
    out += ",\"name\":";
    append_json_escaped(out, leaf);
    out += ",\"depth\":";
    out += std::to_string(depth);
    out += ",\"calls\":";
    append_u64(out, node.calls);
    out += ",\"wall_ns\":";
    append_i64(out, node.wall_ns);
    out += ",\"cpu_ns\":";
    append_i64(out, node.cpu_ns);
    out += ",\"self_wall_ns\":";
    append_i64(out, node.self_wall_ns);
    out += ",\"self_cpu_ns\":";
    append_i64(out, node.self_cpu_ns);
    out += ",\"alloc_bytes\":";
    append_u64(out, node.alloc_bytes);
    out += ",\"alloc_count\":";
    append_u64(out, node.alloc_count);
    out += ",\"self_alloc_bytes\":";
    append_u64(out, node.self_alloc_bytes);
    out += ",\"self_alloc_count\":";
    append_u64(out, node.self_alloc_count);
    out += '}';
  }
  out += "\n],\"flat\":[";
  // Per-tag aggregation (self costs only — inclusive totals of nested tags
  // would double-count; self sums partition the whole run).
  std::map<std::string, ProfileNode> flat;
  for (const auto& [path, node] : report) {
    const std::size_t slash = path.rfind('/');
    const std::string leaf =
        slash == std::string::npos ? path : path.substr(slash + 1);
    ProfileNode& dst = flat[leaf];
    dst.calls += node.calls;
    dst.self_wall_ns += node.self_wall_ns;
    dst.self_cpu_ns += node.self_cpu_ns;
    dst.self_alloc_bytes += node.self_alloc_bytes;
    dst.self_alloc_count += node.self_alloc_count;
  }
  first = true;
  for (const auto& [name, node] : flat) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    append_json_escaped(out, name);
    out += ",\"calls\":";
    append_u64(out, node.calls);
    out += ",\"self_wall_ns\":";
    append_i64(out, node.self_wall_ns);
    out += ",\"self_cpu_ns\":";
    append_i64(out, node.self_cpu_ns);
    out += ",\"self_alloc_bytes\":";
    append_u64(out, node.self_alloc_bytes);
    out += ",\"self_alloc_count\":";
    append_u64(out, node.self_alloc_count);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

void save_profile_json(const ProfileReport& report,
                       const std::filesystem::path& path) {
  try {
    util::write_file_atomic(path, profile_to_json(report));
  } catch (const util::AtomicWriteError& e) {
    throw TelemetryError(e.what());
  }
}

}  // namespace greenhetero::telemetry

#if GH_TELEMETRY_ENABLED

// Global allocation instrumentation backing the profiler's byte/count
// attribution.  The replacements are malloc/free-backed (every delete form
// frees what every new form allocated, so sanitizers stay coherent) and
// unconditionally bump the thread-local tally — two relaxed increments,
// cheap enough to leave on whenever telemetry is compiled in.  Compiled
// only here, so a -DGH_TELEMETRY=OFF build keeps the toolchain's stock
// operator new.

namespace {

void* gh_counted_alloc(std::size_t size) noexcept {
  greenhetero::telemetry::g_alloc_bytes += size;
  ++greenhetero::telemetry::g_alloc_count;
  return std::malloc(size != 0 ? size : 1);
}

void* gh_counted_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  greenhetero::telemetry::g_alloc_bytes += size;
  ++greenhetero::telemetry::g_alloc_count;
  // posix_memalign wants a power-of-two multiple of sizeof(void*);
  // operator new alignments are powers of two, so only the floor needs
  // raising.
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = gh_counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = gh_counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return gh_counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return gh_counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = gh_counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = gh_counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return gh_counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return gh_counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // GH_TELEMETRY_ENABLED
