// Telemetry context: one metrics registry plus one trace ring, with an
// ambient (scoped) current-context pointer so deep call sites — the Solver,
// the source selector, the database — can report without threading a handle
// through every signature.
//
// Ownership: each RackSimulator owns a Telemetry (configured through
// SimConfig::telemetry); the Fleet owns one more for coordinator-level
// events.  The simulator installs a TelemetryScope around each epoch, so
// library code called outside a simulation (unit tests, the solve CLI
// command) simply sees no context and skips reporting.
//
// Timestamps are *simulation* minutes: the owner calls set_now() as the sim
// clock advances and emit() stamps events with it.  Wall time never enters
// the trace (goldens stay byte-stable); wall time only lands in latency
// histograms via the GH_PROBE timing probes (probe.h).
#pragma once

#include <memory>
#include <string>

#include "telemetry/flight_recorder.h"
#include "telemetry/ledger.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/rollup.h"
#include "telemetry/span.h"
#include "telemetry/tracing.h"
#include "util/units.h"

namespace greenhetero::telemetry {

struct TelemetryConfig {
  /// Master switch: when false the owner installs no scope and every
  /// telemetry call in library code is a no-op.
  bool enabled = true;
  /// Trace ring capacity in events (~6 events/epoch; the default holds a
  /// month of 15-minute epochs).
  std::size_t trace_capacity = 1 << 15;
  /// Stamped on every event; the fleet coordinator overrides it per rack.
  int rack_id = 0;
  /// Opt-in: per-epoch EPU loss-attribution ledger (`loss_ledger` trace
  /// events + gh_loss_* metrics).  Off by default so the fault-free golden
  /// traces change only when the feature is requested.
  bool loss_ledger = false;
  /// Opt-in: nested control-loop spans (GH_SPAN), mirrored into the trace
  /// as "span" events and exportable as a Chrome trace_event file.  Off by
  /// default: span events carry wall nanoseconds, which would break the
  /// byte-determinism of golden traces.
  bool spans = false;
  /// Completed spans kept per context (~9 spans/epoch).
  std::size_t span_capacity = std::size_t{1} << 16;
  /// Opt-in: the in-process profiler (profiler.h).  Every GH_SPAN scope
  /// then attributes wall ns, thread-CPU ns and allocation bytes/counts to
  /// its phase path.  Independent of `spans` (profiling needs no span
  /// records); off by default — the *_ns outputs are wall-clock and sit
  /// outside byte-identity guarantees, like span events.
  bool profile = false;
  /// Opt-in: fixed-window rollup aggregation in minutes (0 disables).
  /// Each closed window lands as a "rollup" trace event and is retained
  /// for the --rollup-out series file.
  double rollup_window_min = 0.0;
  /// Opt-in: flight-recorder dump directory (empty disables).  While set,
  /// the last `flightrec_capacity` events are mirrored into a small ring
  /// that the owner dumps on health degradation, invariant violations and
  /// aborts.
  std::string flightrec_dir;
  std::size_t flightrec_capacity = 256;
};

/// Compile/runtime facts `greenhetero info` reports so users can tell why
/// --trace-out/--spans-out produce nothing in a -DGH_TELEMETRY=OFF build.
struct BuildInfo {
  bool probes_enabled = false;  ///< GH_PROBE/GH_SPAN compiled in?
  int trace_schema_version = 0;
  std::size_t builtin_metric_count = 0;
};

[[nodiscard]] BuildInfo build_info();

/// build_info() as one compact JSON object.  `greenhetero info --json` and
/// the benchdiff trajectory rows share it, so every trajectory entry records
/// which build configuration produced its numbers.
[[nodiscard]] std::string build_info_json();

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  [[nodiscard]] const TelemetryConfig& config() const { return config_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] TraceRing& trace() { return trace_; }
  [[nodiscard]] const TraceRing& trace() const { return trace_; }
  [[nodiscard]] LossLedger& loss() { return loss_; }
  [[nodiscard]] const LossLedger& loss() const { return loss_; }
  [[nodiscard]] SpanCollector& spans() { return spans_; }
  [[nodiscard]] const SpanCollector& spans() const { return spans_; }
  [[nodiscard]] Rollup& rollup() { return rollup_; }
  [[nodiscard]] const Rollup& rollup() const { return rollup_; }
  [[nodiscard]] FlightRecorder& flightrec() { return flightrec_; }
  [[nodiscard]] const FlightRecorder& flightrec() const {
    return flightrec_;
  }
  [[nodiscard]] Profiler& profiler() { return profiler_; }
  [[nodiscard]] const Profiler& profiler() const { return profiler_; }

  [[nodiscard]] int rack_id() const { return config_.rack_id; }
  void set_rack_id(int id) { config_.rack_id = id; }

  /// Current simulation time used to stamp events.
  void set_now(Minutes now) { now_ = now; }
  [[nodiscard]] Minutes now() const { return now_; }

  /// Append a trace event stamped with now() and rack_id() (mirrored into
  /// the flight-recorder ring when that feature is on).
  void emit(std::string phase, TraceFields fields);

  /// Checkpoint every sim-clock-driven component: metrics (as a snapshot),
  /// trace ring, loss ledger, rollup, flight recorder and the current
  /// timestamp.  Spans and the profiler are deliberately skipped — both
  /// carry wall-clock nanoseconds and are excluded from byte-identity
  /// guarantees anyway.
  void save_state(checkpoint::Writer& w) const;
  void load_state(checkpoint::Reader& r);

 private:
  TelemetryConfig config_;
  MetricsRegistry metrics_;
  TraceRing trace_;
  LossLedger loss_;
  SpanCollector spans_;
  Rollup rollup_;
  FlightRecorder flightrec_;
  Profiler profiler_;
  Minutes now_{0.0};
};

/// The ambient context, or nullptr outside any TelemetryScope.
[[nodiscard]] Telemetry* current();

/// The ambient context's loss ledger when the feature is enabled
/// (TelemetryConfig::loss_ledger), else nullptr — the one-line guard every
/// contributing layer uses before posting.
[[nodiscard]] LossLedger* loss_ledger();

/// RAII installer for the ambient context.  Nestable; installing nullptr
/// masks any outer context (callees see telemetry disabled).
class TelemetryScope {
 public:
  explicit TelemetryScope(Telemetry* telemetry);
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  Telemetry* previous_;
};

/// emit() on the ambient context; no-op without one.
void emit(std::string phase, TraceFields fields);

}  // namespace greenhetero::telemetry

namespace greenhetero {

// Lifted into the parent namespace so classes with a `telemetry()` accessor
// (which shadows the nested namespace name in class scope) can still name
// the types.
using telemetry::MetricsSnapshot;
using telemetry::Telemetry;
using telemetry::TelemetryConfig;
using telemetry::TelemetryScope;

}  // namespace greenhetero
