// Fault injector: expands a FaultPlan's windowed events into a sorted
// stream of begin/end actions and hands the simulator the actions due at
// each substep boundary.  The injector is pure schedule replay — it holds
// no randomness and no simulator state, so it is trivially deterministic.
#pragma once

#include <vector>

#include "faults/fault_plan.h"
#include "util/units.h"

namespace greenhetero {

/// One edge of a fault window.  `begin == false` marks the window's end
/// (the simulator undoes the fault's effect).
struct FaultAction {
  Minutes at{0.0};
  FaultKind kind = FaultKind::kServerCrash;
  bool begin = true;
  int target = -1;
  double value = 0.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// All actions due at or before `now`, in schedule order; each action is
  /// returned exactly once across calls.
  [[nodiscard]] std::vector<FaultAction> take_due(Minutes now);

  [[nodiscard]] bool exhausted() const { return next_ >= actions_.size(); }
  [[nodiscard]] std::size_t pending() const {
    return actions_.size() - next_;
  }

 private:
  std::vector<FaultAction> actions_;  ///< sorted by (at, end-before-begin)
  std::size_t next_ = 0;
};

}  // namespace greenhetero
