// Fault injector: expands a FaultPlan's windowed events into a sorted
// stream of begin/end actions and hands the simulator the actions due at
// each substep boundary.  The injector is pure schedule replay — it holds
// no randomness and no simulator state, so it is trivially deterministic.
#pragma once

#include <vector>

#include "checkpoint/serializer.h"
#include "faults/fault_plan.h"
#include "util/units.h"

namespace greenhetero {

/// One edge of a fault window.  `begin == false` marks the window's end
/// (the simulator undoes the fault's effect).
struct FaultAction {
  Minutes at{0.0};
  FaultKind kind = FaultKind::kServerCrash;
  bool begin = true;
  int target = -1;
  double value = 0.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// All actions due at or before `now`, in schedule order; each action is
  /// returned exactly once across calls.
  [[nodiscard]] std::vector<FaultAction> take_due(Minutes now);

  [[nodiscard]] bool exhausted() const { return next_ >= actions_.size(); }
  [[nodiscard]] std::size_t pending() const {
    return actions_.size() - next_;
  }

  /// Checkpoint the delivery cursor only — the action schedule itself is
  /// rebuilt deterministically from the configured plan on resume.
  void save_state(checkpoint::Writer& w) const {
    w.u64(actions_.size());
    w.u64(next_);
  }
  void load_state(checkpoint::Reader& r) {
    const auto count = static_cast<std::size_t>(r.u64());
    if (count != actions_.size()) {
      throw checkpoint::CheckpointError(
          "fault injector: plan has " + std::to_string(actions_.size()) +
          " actions, checkpoint recorded " + std::to_string(count));
    }
    next_ = static_cast<std::size_t>(r.u64());
    if (next_ > actions_.size()) {
      throw checkpoint::CheckpointError("fault injector: cursor out of range");
    }
  }

 private:
  std::vector<FaultAction> actions_;  ///< sorted by (at, end-before-begin)
  std::size_t next_ = 0;
};

}  // namespace greenhetero
