#include "faults/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/rng.h"

namespace greenhetero {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kServerCrash:
      return "server_crash";
    case FaultKind::kServerRecover:
      return "server_recover";
    case FaultKind::kDvfsStuck:
      return "dvfs_stuck";
    case FaultKind::kDvfsOffset:
      return "dvfs_offset";
    case FaultKind::kSolarDropout:
      return "solar_dropout";
    case FaultKind::kSolarStuck:
      return "solar_stuck";
    case FaultKind::kGridOutage:
      return "grid_outage";
    case FaultKind::kBatteryDerate:
      return "battery_derate";
    case FaultKind::kMonitorDropout:
      return "monitor_dropout";
  }
  return "?";
}

FaultKind fault_kind_from_string(std::string_view name) {
  for (FaultKind kind :
       {FaultKind::kServerCrash, FaultKind::kServerRecover,
        FaultKind::kDvfsStuck, FaultKind::kDvfsOffset,
        FaultKind::kSolarDropout, FaultKind::kSolarStuck,
        FaultKind::kGridOutage, FaultKind::kBatteryDerate,
        FaultKind::kMonitorDropout}) {
    if (name == to_string(kind)) return kind;
  }
  throw FaultPlanError("fault plan: unknown fault kind '" +
                       std::string(name) + "'");
}

namespace {

void validate_event(const FaultEvent& e) {
  if (!std::isfinite(e.at.value()) || e.at.value() < 0.0) {
    throw FaultPlanError("fault plan: event time must be finite and >= 0");
  }
  if (!std::isfinite(e.duration.value()) || e.duration.value() < 0.0) {
    throw FaultPlanError("fault plan: duration must be finite and >= 0");
  }
  if (!std::isfinite(e.value)) {
    throw FaultPlanError("fault plan: value must be finite");
  }
  if (e.target < -1) {
    throw FaultPlanError("fault plan: target must be a group index or -1");
  }
  switch (e.kind) {
    case FaultKind::kDvfsStuck:
      if (e.value < 0.0 || e.value != std::floor(e.value)) {
        throw FaultPlanError(
            "fault plan: dvfs_stuck value must be a ladder state >= 0");
      }
      break;
    case FaultKind::kBatteryDerate:
      if (e.value < 0.0 || e.value > 0.9) {
        throw FaultPlanError(
            "fault plan: battery_derate value must be in [0, 0.9]");
      }
      break;
    case FaultKind::kMonitorDropout:
      if (e.value < 0.0 || e.value > 1.0) {
        throw FaultPlanError(
            "fault plan: monitor_dropout value must be in [0, 1]");
      }
      break;
    case FaultKind::kServerRecover:
      if (e.duration.value() > 0.0) {
        throw FaultPlanError(
            "fault plan: server_recover is instantaneous (duration 0)");
      }
      break;
    default:
      break;
  }
}

}  // namespace

void FaultPlan::add(FaultEvent event) {
  validate_event(event);
  // Keep sorted by time; equal timestamps preserve insertion order.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) {
        return a.at.value() < b.at.value();
      });
  events_.insert(pos, event);
}

FaultPlan FaultPlan::parse_csv(const CsvTable& table) {
  FaultPlan plan;
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    try {
      FaultEvent e;
      e.at = Minutes{table.number(r, "at_min")};
      e.kind =
          fault_kind_from_string(table.cell(r, table.column_index("kind")));
      e.duration = Minutes{table.number(r, "duration_min")};
      e.target = static_cast<int>(std::lround(table.number(r, "target")));
      e.value = table.number(r, "value");
      plan.add(e);
    } catch (const FaultPlanError& err) {
      throw FaultPlanError(std::string(err.what()) + " (csv row " +
                           std::to_string(r + 1) + ")");
    }
  }
  return plan;
}

FaultPlan FaultPlan::load_csv(const std::filesystem::path& path) {
  return parse_csv(CsvTable::load(path));
}

CsvTable FaultPlan::to_csv() const {
  CsvTable table({"at_min", "kind", "duration_min", "target", "value"});
  for (const FaultEvent& e : events_) {
    std::ostringstream at, duration, value;
    at << e.at.value();
    duration << e.duration.value();
    value << e.value;
    table.add_row({at.str(), std::string(to_string(e.kind)), duration.str(),
                   std::to_string(e.target), value.str()});
  }
  return table;
}

void FaultPlan::save_csv(const std::filesystem::path& path) const {
  to_csv().save(path);
}

FaultPlan make_random_plan(std::uint64_t seed, Minutes duration,
                           std::size_t group_count) {
  if (duration.value() <= 0.0) {
    throw FaultPlanError("fault plan: duration must be positive");
  }
  if (group_count == 0) {
    throw FaultPlanError("fault plan: need at least one group");
  }
  Rng rng{seed};
  FaultPlan plan;
  const int max_group = static_cast<int>(group_count) - 1;
  // One windowed fault of each kind, landing in the middle 80% of the run
  // so every begin/end pair fires before the run completes.
  const auto window_start = [&] {
    return Minutes{rng.uniform(0.05 * duration.value(),
                               0.65 * duration.value())};
  };
  const auto window_length = [&] {
    return Minutes{rng.uniform(0.05 * duration.value(),
                               0.2 * duration.value())};
  };

  {
    FaultEvent e;
    e.kind = FaultKind::kServerCrash;
    e.at = window_start();
    e.duration = window_length();
    e.target = rng.uniform_int(0, max_group);
    plan.add(e);
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kDvfsStuck;
    e.at = window_start();
    e.duration = window_length();
    e.target = rng.uniform_int(0, max_group);
    e.value = rng.uniform_int(1, 4);
    plan.add(e);
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kDvfsOffset;
    e.at = window_start();
    e.duration = window_length();
    e.target = rng.uniform_int(0, max_group);
    e.value = rng.uniform(-30.0, 30.0);
    plan.add(e);
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kSolarDropout;
    e.at = window_start();
    e.duration = window_length();
    plan.add(e);
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kSolarStuck;
    e.at = window_start();
    e.duration = window_length();
    plan.add(e);
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kGridOutage;
    e.at = window_start();
    e.duration = window_length();
    plan.add(e);
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kBatteryDerate;
    e.at = window_start();
    e.duration = window_length();
    e.value = rng.uniform(0.1, 0.5);
    plan.add(e);
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kMonitorDropout;
    e.at = window_start();
    e.duration = window_length();
    e.value = rng.uniform(0.2, 0.8);
    plan.add(e);
  }
  return plan;
}

}  // namespace greenhetero
