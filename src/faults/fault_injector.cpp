#include "faults/fault_injector.h"

#include <algorithm>

namespace greenhetero {

FaultInjector::FaultInjector(const FaultPlan& plan) {
  actions_.reserve(plan.size() * 2);
  for (const FaultEvent& e : plan.events()) {
    FaultAction begin;
    begin.at = e.at;
    begin.kind = e.kind;
    begin.begin = true;
    begin.target = e.target;
    begin.value = e.value;
    actions_.push_back(begin);
    // A recovery event is itself an edge; everything else with a window
    // gets a matching end action.  Duration 0 means open-ended.
    if (e.kind != FaultKind::kServerRecover && e.duration.value() > 0.0) {
      FaultAction end = begin;
      end.at = e.at + e.duration;
      end.begin = false;
      actions_.push_back(end);
    }
  }
  // When a window's end coincides with another fault's begin, clear the old
  // fault first so the new one is not immediately undone.
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     if (a.at.value() != b.at.value()) {
                       return a.at.value() < b.at.value();
                     }
                     return !a.begin && b.begin;
                   });
}

std::vector<FaultAction> FaultInjector::take_due(Minutes now) {
  std::vector<FaultAction> due;
  while (next_ < actions_.size() &&
         actions_[next_].at.value() <= now.value() + 1e-9) {
    due.push_back(actions_[next_]);
    ++next_;
  }
  return due;
}

}  // namespace greenhetero
