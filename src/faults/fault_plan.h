// Deterministic fault-injection schedule.
//
// A FaultPlan is a time-sorted list of typed fault events that the
// RackSimulator replays at substep boundaries.  Faults are pure schedule —
// no randomness at injection time — so the same plan plus the same
// simulation seed reproduces a byte-identical run (the chaos generator
// below derives a *plan* from a seed, then the plan itself is replayed
// deterministically).
//
// Windowed faults (duration > 0) end on their own; a duration of 0 makes
// the fault permanent until a matching recovery event (kServerRecover) or
// the end of the run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/csv.h"
#include "util/units.h"

namespace greenhetero {

class FaultPlanError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind {
  kServerCrash,    ///< a server group (or the whole rack) goes offline
  kServerRecover,  ///< offline group comes back (off until next enforcement)
  kDvfsStuck,      ///< DVFS actuation latched at ladder state `value`
  kDvfsOffset,     ///< actuation lands `value` watts off the commanded budget
  kSolarDropout,   ///< physical: the array feeds nothing during the window
  kSolarStuck,     ///< sensor: renewable observation frozen at window start
  kGridOutage,     ///< utility feed down: grid budget reads zero
  kBatteryDerate,  ///< `value` fraction of nameplate capacity lost
  kMonitorDropout, ///< per-sample dropout probability raised to `value`
};

[[nodiscard]] const char* to_string(FaultKind kind);
/// Inverse of to_string; throws FaultPlanError on unknown names.
[[nodiscard]] FaultKind fault_kind_from_string(std::string_view name);

struct FaultEvent {
  Minutes at{0.0};        ///< injection time (simulation minutes)
  FaultKind kind = FaultKind::kServerCrash;
  Minutes duration{0.0};  ///< window length; 0 = open-ended
  /// Server-group index for server/DVFS faults (-1 = every group);
  /// ignored by plant-level faults.
  int target = -1;
  /// Kind-specific magnitude: ladder state (kDvfsStuck), watts
  /// (kDvfsOffset), capacity fraction (kBatteryDerate), probability
  /// (kMonitorDropout); ignored otherwise.
  double value = 0.0;
};

/// An ordered, validated fault schedule.  CSV format (header required):
///   at_min,kind,duration_min,target,value
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Validate and insert one event, keeping the schedule time-sorted.
  void add(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  [[nodiscard]] static FaultPlan parse_csv(const CsvTable& table);
  [[nodiscard]] static FaultPlan load_csv(const std::filesystem::path& path);
  [[nodiscard]] CsvTable to_csv() const;
  void save_csv(const std::filesystem::path& path) const;

 private:
  std::vector<FaultEvent> events_;  ///< sorted by `at` (stable)
};

/// Chaos-style randomized plan: a handful of windowed faults of every kind
/// spread across `duration`, derived purely from `seed` (same seed ⇒ same
/// plan).  `group_count` bounds the server/DVFS fault targets.
[[nodiscard]] FaultPlan make_random_plan(std::uint64_t seed, Minutes duration,
                                         std::size_t group_count);

}  // namespace greenhetero
