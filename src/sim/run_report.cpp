#include "sim/run_report.h"

#include "checkpoint/serializer.h"

namespace greenhetero {

void save_state(checkpoint::Writer& w, const EpochRecord& record) {
  w.f64(record.start.value());
  w.boolean(record.training);
  w.u8(static_cast<std::uint8_t>(record.source_case));
  w.f64(record.predicted_renewable.value());
  w.f64(record.actual_renewable.value());
  w.f64(record.budget.value());
  checkpoint::save(w, record.ratios);
  w.f64(record.throughput);
  w.f64(record.epu);
  w.f64(record.battery_soc);
  w.f64(record.battery_discharge.value());
  w.f64(record.battery_charge.value());
  w.f64(record.grid_power.value());
  w.f64(record.shortfall.value());
}

void load_state(checkpoint::Reader& r, EpochRecord& record) {
  record.start = Minutes{r.f64()};
  record.training = r.boolean();
  const std::uint8_t source_case = r.u8();
  if (source_case > static_cast<std::uint8_t>(PowerCase::kGridFallback)) {
    throw checkpoint::CheckpointError("epoch record: bad power case " +
                                      std::to_string(source_case));
  }
  record.source_case = static_cast<PowerCase>(source_case);
  record.predicted_renewable = Watts{r.f64()};
  record.actual_renewable = Watts{r.f64()};
  record.budget = Watts{r.f64()};
  checkpoint::load(r, record.ratios);
  record.throughput = r.f64();
  record.epu = r.f64();
  record.battery_soc = r.f64();
  record.battery_discharge = Watts{r.f64()};
  record.battery_charge = Watts{r.f64()};
  record.grid_power = Watts{r.f64()};
  record.shortfall = Watts{r.f64()};
}

double RunReport::mean_throughput() const {
  double sum = 0.0;
  int count = 0;
  for (const auto& e : epochs) {
    if (e.training) continue;
    sum += e.throughput;
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

double RunReport::mean_throughput_insufficient() const {
  double sum = 0.0;
  int count = 0;
  for (const auto& e : epochs) {
    if (e.training) continue;
    if (e.source_case == PowerCase::kRenewableSufficient) continue;
    sum += e.throughput;
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

double RunReport::mean_ratio(std::size_t g) const {
  double sum = 0.0;
  int count = 0;
  for (const auto& e : epochs) {
    if (e.training || g >= e.ratios.size()) continue;
    if (e.budget.value() <= 0.0) continue;
    sum += e.ratios[g];
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

int RunReport::epochs_in_case(PowerCase c) const {
  int count = 0;
  for (const auto& e : epochs) {
    if (!e.training && e.source_case == c) ++count;
  }
  return count;
}

CsvTable RunReport::to_csv() const {
  CsvTable table({"minute", "training", "case", "pred_renewable_w",
                  "renewable_w", "budget_w", "par0", "par1", "par2",
                  "throughput", "epu", "battery_soc", "battery_discharge_w",
                  "battery_charge_w", "grid_w", "shortfall_w"});
  for (const auto& e : epochs) {
    auto ratio_at = [&e](std::size_t i) {
      return i < e.ratios.size() ? e.ratios[i] : 0.0;
    };
    table.add_numeric_row({e.start.value(),
                           e.training ? 1.0 : 0.0,
                           static_cast<double>(e.source_case),
                           e.predicted_renewable.value(),
                           e.actual_renewable.value(),
                           e.budget.value(),
                           ratio_at(0),
                           ratio_at(1),
                           ratio_at(2),
                           e.throughput,
                           e.epu,
                           e.battery_soc,
                           e.battery_discharge.value(),
                           e.battery_charge.value(),
                           e.grid_power.value(),
                           e.shortfall.value()});
  }
  return table;
}

}  // namespace greenhetero
