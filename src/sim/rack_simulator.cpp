#include "sim/rack_simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "telemetry/probe.h"
#include "telemetry/span.h"
#include "util/logging.h"

namespace greenhetero {

// Inside RackSimulator's members the telemetry() accessor shadows the
// nested namespace name; this alias keeps the free functions reachable.
namespace tel = telemetry;

BatterySpec paper_battery_spec() {
  BatterySpec spec;
  spec.capacity = WattHours{12000.0};  // 10 x 12V x 100Ah
  spec.depth_of_discharge = 0.4;
  spec.round_trip_efficiency = 0.8;
  spec.max_charge_power = Watts{2000.0};
  spec.max_discharge_power = Watts{3000.0};
  spec.rated_cycles = 1300;
  return spec;
}

RackPowerPlant make_standard_plant(PowerTrace solar, GridSpec grid) {
  return RackPowerPlant{SolarArray{std::move(solar)},
                        Battery{paper_battery_spec()}, GridSupply{grid}};
}

RackPowerPlant make_fixed_budget_plant(Watts budget, Minutes duration) {
  const Minutes interval{15.0};
  const auto samples = static_cast<std::size_t>(
      std::ceil(duration.value() / interval.value())) + 1;
  PowerTrace constant{interval, std::vector<Watts>(samples, budget)};
  BatterySpec battery;
  battery.capacity = WattHours{1.0};
  battery.depth_of_discharge = 1.0;
  battery.max_charge_power = Watts{0.0};
  battery.max_discharge_power = Watts{0.0};
  GridSpec grid;
  grid.budget = Watts{0.0};
  return RackPowerPlant{SolarArray{std::move(constant)}, Battery{battery},
                        GridSupply{grid}};
}

void SimConfig::validate() const {
  if (substep.value() <= 0.0) {
    throw std::invalid_argument("sim config: substep must be positive");
  }
  if (substep.value() > controller.epoch.value() + 1e-9) {
    throw std::invalid_argument(
        "sim config: substep must not exceed the epoch length");
  }
  for (std::size_t i = 0; i < workload_schedule.size(); ++i) {
    if (workload_schedule[i].at.value() < 0.0) {
      throw std::invalid_argument(
          "sim config: workload switch times must be non-negative");
    }
    if (i > 0 && workload_schedule[i].at.value() <
                     workload_schedule[i - 1].at.value()) {
      throw std::invalid_argument(
          "sim config: workload schedule must be sorted by time");
    }
  }
  if (controller.profiling_noise < 0.0 || controller.profiling_noise > 1.0) {
    throw std::invalid_argument(
        "sim config: profiling noise must be in [0, 1]");
  }
  if (controller.monitor_dropout < 0.0 || controller.monitor_dropout > 1.0) {
    throw std::invalid_argument(
        "sim config: monitor dropout must be in [0, 1]");
  }
  if (controller.holt_training_window < 3) {
    throw std::invalid_argument(
        "sim config: Holt training window must be at least 3 epochs");
  }
  if (controller.holt_retrain_every < 1) {
    throw std::invalid_argument(
        "sim config: Holt retrain cadence must be at least 1 epoch");
  }
  if (metrics_flush_every < 1) {
    throw std::invalid_argument(
        "sim config: metrics flush cadence must be at least 1 epoch");
  }
  if (trace_stream && trace_stream->queue_capacity == 0) {
    throw std::invalid_argument(
        "sim config: stream queue capacity must be positive");
  }
  if (!checkpoint_dir.empty() && checkpoint_every < 1) {
    throw std::invalid_argument(
        "sim config: checkpoint cadence must be at least 1 epoch");
  }
}

struct RackSimulator::EpochStats {
  double renewable_sum = 0.0;
  double throughput_sum = 0.0;
  double discharge_sum = 0.0;
  double charge_sum = 0.0;
  double grid_sum = 0.0;
  double shortfall_sum = 0.0;
  EpuMeter epu;
  int steps = 0;

  void observe(const PowerFlows& flows, Watts renewable, double throughput,
               Watts shortfall) {
    renewable_sum += renewable.value();
    throughput_sum += throughput;
    discharge_sum += flows.battery_to_load.value();
    charge_sum += flows.battery_input().value();
    grid_sum += (flows.grid_to_load + flows.grid_to_battery).value();
    shortfall_sum += shortfall.value();
    ++steps;
  }
  [[nodiscard]] double mean(double sum) const {
    return steps > 0 ? sum / steps : 0.0;
  }
};

RackSimulator::RackSimulator(Rack rack, RackPowerPlant plant, SimConfig config)
    : rack_(std::move(rack)),
      plant_(std::move(plant)),
      config_(std::move(config)),
      telemetry_(std::make_unique<Telemetry>(config_.telemetry)),
      controller_(config_.controller),
      clock_(config_.controller.epoch, config_.substep) {
  config_.validate();
  base_dropout_ = config_.controller.monitor_dropout;
  if (!config_.faults.empty()) {
    for (const FaultEvent& event : config_.faults.events()) {
      const bool group_scoped = event.kind == FaultKind::kServerCrash ||
                                event.kind == FaultKind::kServerRecover ||
                                event.kind == FaultKind::kDvfsStuck ||
                                event.kind == FaultKind::kDvfsOffset;
      if (group_scoped && event.target >= 0 &&
          static_cast<std::size_t>(event.target) >= rack_.group_count()) {
        throw std::invalid_argument(
            "sim config: fault plan targets a group the rack does not have");
      }
    }
    injector_.emplace(config_.faults);
  }
  if (config_.check) {
    checker_ = std::make_unique<check::InvariantChecker>();
  }
  if (config_.trace_stream) {
    stream_ = std::make_unique<tel::StreamingTraceSink>(
        *config_.trace_stream, &telemetry_->metrics());
  }
  if (config_.rapl_enforcement) {
    if (config_.controller.policy == PolicyKind::kGreenHeteroS) {
      // The feedback caps act per group; they cannot express waking only a
      // subset of a group's members.
      throw std::invalid_argument(
          "simulator: RAPL enforcement does not support the subset policy");
    }
    PowerCapConfig cap_config;
    // Average over a few control ticks so state changes lag realistically.
    cap_config.window = config_.substep * 3.0;
    rapl_.assign(rack_.group_count(), PowerCapController{cap_config});
  }
  epochs_.reset(1);
}

void RackSimulator::enforce_with_rapl(std::span<const Watts> group_power) {
  for (std::size_t i = 0; i < rack_.group_count(); ++i) {
    const Watts cap =
        group_power[i] / static_cast<double>(rack_.group(i).count);
    rapl_[i].update(rack_.mutable_group_representative(i), cap,
                    clock_.substep_length());
    rack_.set_group_state(i, rack_.group_representative(i).state());
  }
}

Watts RackSimulator::demand_at(Minutes t) const {
  const Watts peak = rack_.peak_demand();
  if (!config_.demand_trace) return peak;
  return min(peak, config_.demand_trace->at(t));
}

void RackSimulator::pretrain() {
  if (!controller_.policy().needs_database()) return;
  const TelemetryScope scope(config_.telemetry.enabled ? telemetry_.get()
                                                       : nullptr);
  GH_PROBE("gh_pretrain_ns");
  const std::vector<double> sweep = controller_.training_sweep();
  for (std::size_t g = 0; g < rack_.group_count(); ++g) {
    const ProfileKey key{rack_.group(g).model, rack_.group_workload(g)};
    if (controller_.database().contains(key)) continue;
    // Flaky meters can drop readings; re-run the sweep until a usable
    // sample set lands (bounded — give up to the online training path).
    for (int attempt = 0; attempt < 16; ++attempt) {
      std::vector<ServerSample> samples;
      samples.reserve(sweep.size());
      for (double fraction : sweep) {
        // Drive the whole rack to this fraction of each group's range;
        // only group g's meter is read, the rest just burn along (ample
        // power).
        std::vector<Watts> budgets;
        for (std::size_t i = 0; i < rack_.group_count(); ++i) {
          const PerfCurve& curve = rack_.group_curve(i);
          const Watts per_server =
              curve.idle_power() +
              (curve.peak_power() - curve.idle_power()) * fraction;
          budgets.push_back((per_server + Watts{0.01}) *
                            static_cast<double>(rack_.group(i).count));
        }
        rack_.enforce_allocation(budgets);
        const ServerSample s = controller_.monitor().sample_group(rack_, g);
        if (s.power.value() > 0.0) samples.push_back(s);
      }
      if (samples.size() < 3) continue;
      try {
        controller_.record_training(key, samples);
        break;
      } catch (const DatabaseError&) {
        // Degenerate (e.g. surviving samples at too few powers): retry.
      }
    }
  }
  rack_.power_off();
}

void RackSimulator::apply_workload_schedule(Minutes now) {
  while (next_switch_ < config_.workload_schedule.size() &&
         config_.workload_schedule[next_switch_].at.value() <=
             now.value() + 1e-9) {
    const WorkloadSwitch& sw = config_.workload_schedule[next_switch_];
    if (sw.workload != rack_.workload() || !rack_.uniform_workload()) {
      GH_INFO << "workload switch @" << now.value() << "min -> '"
              << workload_spec(sw.workload).name << "'";
      rack_.set_workload(sw.workload);
    }
    ++next_switch_;
  }
}

void RackSimulator::apply_due_faults(Minutes now) {
  if (!injector_) return;
  for (const FaultAction& action : injector_->take_due(now)) {
    apply_fault_action(action, now);
  }
}

void RackSimulator::apply_fault_action(const FaultAction& action,
                                       Minutes now) {
  const bool all_groups = action.target < 0;
  const auto first = all_groups ? std::size_t{0}
                                : static_cast<std::size_t>(action.target);
  const auto last = all_groups ? rack_.group_count() : first + 1;
  switch (action.kind) {
    case FaultKind::kServerCrash:
      for (std::size_t i = first; i < last; ++i) {
        rack_.set_group_online(i, !action.begin);
      }
      break;
    case FaultKind::kServerRecover:
      for (std::size_t i = first; i < last; ++i) {
        rack_.set_group_online(i, true);
      }
      break;
    case FaultKind::kDvfsStuck:
      for (std::size_t i = first; i < last; ++i) {
        rack_.set_group_stuck_state(
            i, action.begin
                   ? std::optional<int>{static_cast<int>(action.value)}
                   : std::nullopt);
      }
      break;
    case FaultKind::kDvfsOffset:
      for (std::size_t i = first; i < last; ++i) {
        rack_.set_group_actuation_offset(
            i, Watts{action.begin ? action.value : 0.0});
      }
      break;
    case FaultKind::kSolarDropout:
      plant_.set_solar_outage(action.begin);
      break;
    case FaultKind::kSolarStuck:
      // Sensor fault: latch what the meter reads right now and keep
      // reporting it; the physical array is unaffected.
      if (action.begin) {
        solar_sensor_stuck_ = plant_.renewable_available(now);
      } else {
        solar_sensor_stuck_.reset();
      }
      break;
    case FaultKind::kGridOutage:
      plant_.set_grid_outage(action.begin);
      break;
    case FaultKind::kBatteryDerate:
      plant_.set_battery_fault_derate(action.begin ? action.value : 0.0);
      break;
    case FaultKind::kMonitorDropout:
      controller_.monitor().set_dropout_rate(action.begin ? action.value
                                                          : base_dropout_);
      break;
  }
  GH_WARN << "fault @" << now.value() << "min: " << to_string(action.kind)
          << (action.begin ? " begins" : " ends");
  if (Telemetry* t = tel::current()) {
    const Minutes stamp = t->now();
    t->set_now(now);
    t->emit("fault_inject", {{"kind", to_string(action.kind)},
                             {"phase", action.begin ? "begin" : "end"},
                             {"target", action.target},
                             {"value", action.value}});
    t->set_now(stamp);
    if (action.begin) {
      t->metrics()
          .counter("gh_faults_injected_total",
                   {{"kind", to_string(action.kind)}})
          .increment();
    }
  }
}

EpochRecord RackSimulator::step_epoch() {
  try {
    return step_epoch_impl();
  } catch (const check::InvariantViolation& violation) {
    // The post-mortem trigger: freeze the rack's recent full-detail history
    // before the exception unwinds the run.
    dump_flight_record("invariant_" + violation.name());
    throw;
  }
}

EpochRecord RackSimulator::step_epoch_impl() {
  const TelemetryScope scope(config_.telemetry.enabled ? telemetry_.get()
                                                       : nullptr);
  GH_PROBE("gh_step_epoch_ns");
  GH_SPAN("epoch");
  const Minutes epoch_start = clock_.now();
  telemetry_->set_now(epoch_start);
  apply_due_faults(epoch_start);
  apply_workload_schedule(epoch_start);
  // Open the loss ledger after the workload switch (peak_demand must be
  // current) and before plan_epoch (the controller posts the plan).
  if (tel::LossLedger* loss = tel::loss_ledger()) {
    loss->begin_epoch(epoch_start.value(), rack_.peak_demand().value());
  }
  const Watts demand_hint = demand_at(epoch_start);
  const EpochPlan plan =
      controller_.plan_epoch(rack_, plant_, epoch_start, demand_hint);

  EpochRecord record;
  record.start = epoch_start;
  record.training = plan.training_run;
  record.source_case = plan.source.source_case;
  record.predicted_renewable = plan.predicted_renewable;
  record.budget = plan.source.server_budget;
  record.ratios = plan.allocation.ratios;

  if (plan.training_run) {
    run_training_epoch(plan, record);
  } else {
    run_normal_epoch(plan, demand_hint, record);
  }
  record_epoch_telemetry(record);
  if (checker_) {
    check::InvariantChecker::EpochContext ctx;
    ctx.record = &record;
    ctx.ledger = &ledger_;
    ctx.run_epu = run_epu_.epu();
    ctx.floor_soc = 1.0 - plant_.battery().spec().depth_of_discharge;
    // record_epoch_telemetry just closed the loss epoch; check the exact
    // decomposition it appended.
    if (const tel::LossLedger* loss = tel::loss_ledger();
        loss != nullptr && !loss->epochs().empty()) {
      ctx.loss = &loss->epochs().back();
    }
    checker_->check_epoch(ctx);
  }
  const HealthState health_now = controller_.health().state();
  if (health_now != last_health_) {
    const HealthTracker::Transition edge{last_health_, health_now};
    last_health_ = health_now;
    if (edge.leaves_normal()) {
      dump_flight_record(std::string("health_") + to_string(health_now));
    }
  }
  return record;
}

/// The authoritative per-epoch trace event: emitted after the epoch has run,
/// so it carries the plan (case, prediction, PAR) *and* the outcome (actual
/// renewable, throughput, EPU, shortfall) side by side.
void RackSimulator::record_epoch_telemetry(const EpochRecord& record) {
  Telemetry* t = tel::current();
  if (t == nullptr) return;
  tel::MetricsRegistry& m = t->metrics();
  m.counter("gh_epochs_total", {{"case", std::string(to_string(record.source_case))}})
      .increment();
  if (record.training) m.counter("gh_training_epochs_total").increment();
  m.counter("gh_substeps_total")
      .increment(static_cast<double>(clock_.substeps_per_epoch()));
  if (!record.training) {
    m.histogram("gh_renewable_prediction_error_w", tel::watt_buckets())
        .observe(std::fabs(record.predicted_renewable.value() -
                           record.actual_renewable.value()));
  }
  m.gauge("gh_battery_soc").set(record.battery_soc);
  t->emit("epoch_plan",
          {{"training", record.training},
           {"case", to_string(record.source_case)},
           {"predicted_renewable_w", record.predicted_renewable.value()},
           {"actual_renewable_w", record.actual_renewable.value()},
           {"budget_w", record.budget.value()},
           {"ratios", record.ratios},
           {"throughput", record.throughput},
           {"epu", record.epu},
           {"battery_soc", record.battery_soc},
           {"grid_w", record.grid_power.value()},
           {"shortfall_w", record.shortfall.value()}});
  tel::LossLedger* loss = tel::loss_ledger();
  std::optional<tel::EpochLossRecord> loss_epoch;
  if (loss != nullptr && loss->epoch_open()) {
    loss_epoch = loss->end_epoch();
    const tel::EpochLossRecord& epoch = *loss_epoch;
    m.counter("gh_loss_epochs_total").increment();
    m.gauge("gh_loss_invariant_error_w").set(epoch.invariant_error_w());
    tel::TraceFields fields{{"supply_w", epoch.supply_w},
                            {"useful_w", epoch.useful_w},
                            {"epu", epoch.epu()}};
    for (tel::LossBucket b : tel::all_loss_buckets()) {
      const double watts = epoch.bucket(b);
      m.gauge("gh_loss_w", {{"bucket", std::string(tel::to_string(b))}})
          .set(watts);
      fields.emplace_back(std::string(tel::to_string(b)) + "_w", watts);
    }
    t->emit("loss_ledger", std::move(fields));
  }
  if (t->rollup().enabled()) {
    tel::RollupSample sample;
    sample.t_min = record.start.value();
    sample.epu = record.epu;
    sample.shortfall_w = record.shortfall.value();
    sample.grid_w = record.grid_power.value();
    sample.health_state = static_cast<int>(controller_.health().state());
    sample.loss = loss_epoch ? &*loss_epoch : nullptr;
    if (auto window = t->rollup().observe_epoch(sample)) {
      m.counter("gh_rollup_windows_total").increment();
      t->emit("rollup", window->to_trace_fields());
    }
  }
  // Last so it counts this epoch's own events; what a streaming drain (or
  // the ring bound) is holding right now.
  m.gauge("gh_trace_buffer_bytes")
      .set(static_cast<double>(t->trace().approx_bytes()));
}

void RackSimulator::set_grid_budget(Watts budget) {
  plant_.set_grid_budget(budget);
}

SolveRequest RackSimulator::peek_epoch_solve() const {
  return controller_.peek_solve_request(rack_, plant_, clock_.now(),
                                        demand_at(clock_.now()));
}

void RackSimulator::set_presolved(PresolvedSolve presolved) {
  controller_.offer_presolved(std::move(presolved));
}

void RackSimulator::drain_trace_to_stream() {
  if (!stream_) return;
  tel::TraceRing& ring = telemetry_->trace();
  const std::uint64_t dropped = ring.dropped();
  if (dropped > streamed_dropped_) {
    stream_->note_dropped(dropped - streamed_dropped_);
    streamed_dropped_ = dropped;
  }
  stream_->push(ring.drain());
}

void RackSimulator::flush_rollup() {
  tel::Rollup& rollup = telemetry_->rollup();
  if (!rollup.enabled()) return;
  const Minutes end = clock_.now();
  if (auto window = rollup.flush(end.value())) {
    // Stamped with the run's end time — never earlier than any event
    // already emitted, which the streaming watermark merge relies on.
    telemetry_->set_now(end);
    telemetry_->metrics().counter("gh_rollup_windows_total").increment();
    telemetry_->emit("rollup", window->to_trace_fields());
  }
}

std::filesystem::path RackSimulator::dump_flight_record(
    std::string_view reason) {
  tel::FlightRecorder& recorder = telemetry_->flightrec();
  if (!recorder.enabled()) return {};
  const double now = clock_.now().value();
  // Render the fault plan as context rows — the post-mortem's first
  // question is "which injected faults were in flight?".
  std::vector<tel::TraceEvent> rows;
  rows.reserve(config_.faults.events().size());
  for (const FaultEvent& event : config_.faults.events()) {
    tel::TraceEvent row;
    row.sim_minutes = now;
    row.rack_id = telemetry_->rack_id();
    row.phase = "fault_plan_row";
    row.fields = {{"at_min", event.at.value()},
                  {"kind", to_string(event.kind)},
                  {"duration_min", event.duration.value()},
                  {"target", event.target},
                  {"value", event.value},
                  {"state", event.at.value() <= now + 1e-9 ? "delivered"
                                                           : "pending"}};
    rows.push_back(std::move(row));
  }
  telemetry_->metrics().counter("gh_flightrec_dumps_total").increment();
  return recorder.dump(reason, telemetry_->rack_id(), now,
                       telemetry_->metrics().snapshot(), rows);
}

RunReport RackSimulator::run(Minutes duration) {
  RunReport report;
  const auto total_epochs = static_cast<std::size_t>(
      std::llround(duration.value() / clock_.epoch_length().value()));
  const auto flush_every =
      static_cast<std::size_t>(config_.metrics_flush_every);
  const auto checkpoint_every =
      static_cast<std::size_t>(std::max(1, config_.checkpoint_every));
  // The epoch history lives on the simulator so checkpoints capture it; a
  // resumed run continues from the restored epoch with the completed
  // records already in place, a fresh run starts over.
  std::size_t start_epoch = 0;
  if (resumed_) {
    start_epoch = clock_.epoch_index();
    resumed_ = false;
  } else {
    epochs_.reset(1);
  }
  // Throughput gauge: epochs stepped in *this* run() over its wall time.
  // Wall-clock, so — like the gh_*_ns series — it sits outside the
  // byte-identity comparisons (the crash fuzzer and the parallel-fleet
  // test filter it out).
  const std::chrono::steady_clock::time_point run_begin =
      std::chrono::steady_clock::now();
  std::size_t stepped = 0;
  const auto update_throughput = [&] {
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - run_begin)
                            .count();
    if (stepped == 0 || secs <= 0.0 || !telemetry_->config().enabled) return;
    telemetry_->metrics()
        .gauge("gh_rack_epochs_per_sec")
        .set(static_cast<double>(stepped) / secs);
  };
  for (std::size_t e = start_epoch; e < total_epochs; ++e) {
    epochs_.append(step_epoch());
    ++stepped;
    drain_trace_to_stream();
    if (!config_.metrics_out.empty() && (e + 1) % flush_every == 0 &&
        e + 1 < total_epochs) {
      update_throughput();
      tel::save_metrics(telemetry_->metrics().snapshot(), config_.metrics_out,
                        /*human_sibling=*/true);
    }
    // Checkpoint at the epoch barrier: the ring is drained, the sink is
    // about to be flushed, and no finalization has happened yet, so the
    // snapshot plus the truncated stream file reconstruct this exact
    // moment.  A stop request forces a final checkpoint regardless of
    // cadence, then falls through to normal finalization — the outputs
    // stay standalone-valid and resume discards that tail anyway.
    const bool stop = config_.stop_flag &&
                      config_.stop_flag->load(std::memory_order_relaxed);
    if (!config_.checkpoint_dir.empty() &&
        (stop || (e + 1) % checkpoint_every == 0)) {
      write_checkpoint();
    }
    if (stop) {
      report.interrupted = true;
      GH_WARN << "stop requested; run interrupted after epoch " << e + 1
              << " of " << total_epochs;
      break;
    }
  }
  flush_rollup();
  drain_trace_to_stream();
  if (stream_) stream_->flush();
  update_throughput();
  if (!config_.metrics_out.empty()) {
    tel::save_metrics(telemetry_->metrics().snapshot(), config_.metrics_out,
                      /*human_sibling=*/true);
  }

  epochs_.fill_report(0, report.epochs);
  report.ledger = ledger_;
  report.total_work = rack_.total_work();
  report.overall_epu = run_epu_.epu();
  report.battery_cycles = plant_.battery().equivalent_cycles();
  report.grid_cost = plant_.grid().total_cost();
  report.grid_energy = plant_.grid().total_energy();
  report.metrics = telemetry_->metrics().snapshot();
  return report;
}

void RackSimulator::save_state(checkpoint::Writer& w) const {
  clock_.save_state(w);
  rack_.save_state(w);
  plant_.save_state(w);
  controller_.save_state(w);
  ledger_.save_state(w);
  run_epu_.save_state(w);
  w.u64(static_cast<std::uint64_t>(next_switch_));
  // rapl_ sizing, injector_ and checker_ engagement all derive from the
  // (identical) config, so only engaged state is written.
  for (const PowerCapController& cap : rapl_) cap.save_state(w);
  if (injector_) injector_->save_state(w);
  checkpoint::save(w, solar_sensor_stuck_
                          ? std::optional<double>{solar_sensor_stuck_->value()}
                          : std::nullopt);
  w.u8(static_cast<std::uint8_t>(last_health_));
  w.u64(streamed_dropped_);
  if (checker_) checker_->save_state(w);
  telemetry_->save_state(w);
  epochs_.save_state(w);
}

void RackSimulator::load_state(checkpoint::Reader& r) {
  clock_.load_state(r);
  rack_.load_state(r);
  plant_.load_state(r);
  controller_.load_state(r);
  ledger_.load_state(r);
  run_epu_.load_state(r);
  next_switch_ = static_cast<std::size_t>(r.u64());
  if (next_switch_ > config_.workload_schedule.size()) {
    throw checkpoint::CheckpointError(
        "simulator state: workload-switch cursor out of range");
  }
  for (PowerCapController& cap : rapl_) cap.load_state(r);
  if (injector_) injector_->load_state(r);
  std::optional<double> stuck;
  checkpoint::load(r, stuck);
  solar_sensor_stuck_ =
      stuck ? std::optional<Watts>{Watts{*stuck}} : std::nullopt;
  const std::uint8_t health = r.u8();
  if (health > static_cast<std::uint8_t>(HealthState::kRecovering)) {
    throw checkpoint::CheckpointError("simulator state: bad health state " +
                                      std::to_string(health));
  }
  last_health_ = static_cast<HealthState>(health);
  streamed_dropped_ = r.u64();
  if (checker_) checker_->load_state(r);
  telemetry_->load_state(r);
  epochs_.load_state(r);
  if (epochs_.racks() != 1) {
    throw checkpoint::CheckpointError(
        "simulator state: epoch history is not single-rack");
  }
}

void RackSimulator::write_checkpoint() {
  if (config_.checkpoint_dir.empty()) return;
  // Flush first so the writer thread is idle and the sink's tellp() is the
  // exact durable watermark of everything streamed so far.
  if (stream_) stream_->flush();
  checkpoint::Writer w;
  w.u8(1);  // payload kind: standalone rack simulation
  save_state(w);
  w.boolean(static_cast<bool>(stream_));
  if (stream_) stream_->save_state(w);
  checkpoint::write_snapshot(config_.checkpoint_dir, clock_.epoch_index(),
                             config_.config_hash, w.buffer(),
                             config_.checkpoint_keep);
}

void RackSimulator::load_checkpoint(const checkpoint::Snapshot& snapshot) {
  if (snapshot.config_hash != config_.config_hash) {
    throw checkpoint::CheckpointError(
        "checkpoint was taken under a different scenario configuration "
        "(fingerprint mismatch); refusing to resume");
  }
  checkpoint::Reader r{snapshot.payload};
  const std::uint8_t kind = r.u8();
  if (kind != 1) {
    throw checkpoint::CheckpointError(
        "snapshot holds a fleet run, not a standalone simulation");
  }
  load_state(r);
  const bool streamed = r.boolean();
  if (streamed != static_cast<bool>(stream_)) {
    throw checkpoint::CheckpointError(
        streamed ? "checkpointed run streamed its trace; resume needs the "
                   "same --trace-out stream configuration"
                 : "checkpointed run did not stream; resume must not add a "
                   "streaming sink");
  }
  if (stream_) stream_->load_state(r);
  if (!r.done()) {
    throw checkpoint::CheckpointError("snapshot has trailing bytes");
  }
  resumed_ = true;
}

void RackSimulator::run_training_epoch(const EpochPlan& plan,
                                       EpochRecord& record) {
  // Training run (Fig. 7): sweep the frequency levels under ample power for
  // training_duration, sampling each level; then full speed for the rest of
  // the epoch.  Battery and grid stand by to absorb renewable shortfalls.
  const ControllerConfig& cc = controller_.config();
  const std::vector<double> sweep = controller_.training_sweep();
  std::vector<std::vector<ServerSample>> samples(rack_.group_count());

  SourceDecision decision;
  decision.source_case = PowerCase::kGridFallback;
  decision.from_battery = plant_.battery_discharge_available(clock_.substep_length());
  decision.from_grid = plant_.grid_budget();
  decision.server_budget = plan.source.server_budget;
  // The controller skips planning for training epochs, so the simulator
  // posts the ledger plan itself: no forecast, and the green share is the
  // budget minus the grid standing by underneath it.
  if (tel::LossLedger* loss = tel::loss_ledger()) {
    loss->set_plan(
        0.0, std::max(0.0, (decision.server_budget - decision.from_grid).value()));
  }

  EpochStats stats;
  GH_PROBE("gh_substep_loop_ns");
  {
    GH_SPAN("substeps");
    const auto substeps = clock_.substeps_per_epoch();
    for (std::size_t s = 0; s < substeps; ++s) {
      const double elapsed =
          static_cast<double>(s) * clock_.substep_length().value();
      std::vector<Watts> budgets(rack_.group_count());
      const bool in_training = elapsed < cc.training_duration.value();
      const auto sample_idx = std::min(
          sweep.size() - 1,
          static_cast<std::size_t>(elapsed /
                                   cc.training_sample_interval.value()));
      const double fraction = in_training ? sweep[sample_idx] : 1.0;
      for (std::size_t i = 0; i < rack_.group_count(); ++i) {
        const PerfCurve& curve = rack_.group_curve(i);
        const Watts per_server =
            curve.idle_power() +
            (curve.peak_power() - curve.idle_power()) * fraction;
        budgets[i] = (per_server + Watts{0.01}) *
                     static_cast<double>(rack_.group(i).count);
      }
      rack_.enforce_allocation(budgets);
      // Sample at the end of each profiling interval.
      if (in_training &&
          std::fmod(elapsed + clock_.substep_length().value(),
                    cc.training_sample_interval.value()) < 1e-9) {
        for (std::size_t i = 0; i < rack_.group_count(); ++i) {
          samples[i].push_back(controller_.monitor().sample_group(rack_, i));
        }
      }
      execute_substep(decision, budgets, stats);
      clock_.advance_substep();
    }
  }

  for (std::size_t i = 0; i < rack_.group_count(); ++i) {
    const ProfileKey key{rack_.group(i).model, rack_.group_workload(i)};
    if (!controller_.database().contains(key)) {
      // Dropped meter readings (zero power) carry no information; if too
      // few valid samples remain, skip recording — needs_training stays
      // true and the next epoch retries the run.
      std::vector<ServerSample> valid;
      for (const ServerSample& s : samples[i]) {
        if (s.power.value() > 0.0) valid.push_back(s);
      }
      if (valid.size() < 3) {
        GH_WARN << "training run for group " << i
                << " lost too many samples; retrying next epoch";
        continue;
      }
      try {
        controller_.record_training(key, valid);
      } catch (const DatabaseError&) {
        GH_WARN << "training samples degenerate for group " << i
                << "; retrying next epoch";
      }
    }
  }

  record.actual_renewable = Watts{stats.mean(stats.renewable_sum)};
  record.throughput = stats.mean(stats.throughput_sum);
  record.epu = stats.epu.epu();
  record.battery_soc = plant_.battery().soc();
  record.battery_discharge = Watts{stats.mean(stats.discharge_sum)};
  record.battery_charge = Watts{stats.mean(stats.charge_sum)};
  record.grid_power = Watts{stats.mean(stats.grid_sum)};
  record.shortfall = Watts{stats.mean(stats.shortfall_sum)};
  controller_.finish_epoch(rack_, record.actual_renewable,
                           rack_.peak_demand());
}

void RackSimulator::run_normal_epoch(const EpochPlan& plan, Watts demand_hint,
                                     EpochRecord& record) {
  std::vector<Watts> group_power;
  if (plan.source.server_budget.value() > 1e-6 &&
      !plan.allocation.ratios.empty()) {
    if (config_.rapl_enforcement) {
      // RAPL mode: only set the caps; the feedback loops converge over the
      // next substeps instead of jumping instantly.
      group_power.reserve(plan.allocation.ratios.size());
      for (double ratio : plan.allocation.ratios) {
        group_power.push_back(plan.source.server_budget *
                              std::max(0.0, ratio));
      }
    } else {
      group_power = Enforcer::apply_allocation(rack_, plan.allocation,
                                               plan.source.server_budget);
    }
  } else {
    rack_.power_off();
    group_power.assign(rack_.group_count(), Watts{0.0});
  }

  EpochStats stats;
  GH_PROBE("gh_substep_loop_ns");
  {
    GH_SPAN("substeps");
    const auto substeps = clock_.substeps_per_epoch();
    for (std::size_t s = 0; s < substeps; ++s) {
      execute_substep(plan.source, group_power, stats);
      clock_.advance_substep();
    }
  }

  record.actual_renewable = Watts{stats.mean(stats.renewable_sum)};
  record.throughput = stats.mean(stats.throughput_sum);
  record.epu = stats.epu.epu();
  record.battery_soc = plant_.battery().soc();
  record.battery_discharge = Watts{stats.mean(stats.discharge_sum)};
  record.battery_charge = Watts{stats.mean(stats.charge_sum)};
  record.grid_power = Watts{stats.mean(stats.grid_sum)};
  record.shortfall = Watts{stats.mean(stats.shortfall_sum)};
  EpochFeedback feedback;
  // A stuck sensor lies to the controller (and through it to the Holt
  // predictor); the record keeps the ground truth.
  feedback.observed_renewable =
      solar_sensor_stuck_ ? *solar_sensor_stuck_ : record.actual_renewable;
  feedback.observed_demand = demand_hint;
  feedback.shortfall = record.shortfall;
  feedback.evaluate_health = true;
  controller_.finish_epoch(rack_, feedback);
}

PowerFlows RackSimulator::execute_substep(const SourceDecision& decision,
                                          std::vector<Watts>& group_power,
                                          EpochStats& stats) {
  const Minutes now = clock_.now();
  const Minutes dt = clock_.substep_length();
  apply_due_faults(now);
  const Watts renewable = plant_.renewable_available(now);

  if (config_.rapl_enforcement && !group_power.empty()) {
    enforce_with_rapl(group_power);
  }

  Watts draw = rack_.total_draw();
  StepPlan step = Enforcer::plan_step(decision, renewable, draw, plant_, dt);
  if (step.shortfall.value() > 1e-6 && draw.value() > 0.0) {
    // The plan overshot the sources (prediction error): degrade every
    // group's budget proportionally and re-enforce.  Enforcement quantises
    // downward, so one pass brings the draw within the available power.
    // In RAPL mode this is the PROCHOT-style emergency throttle: the
    // feedback loop is bypassed and states drop immediately.
    const double factor =
        std::max(0.0, (draw - step.shortfall) / draw);
    for (Watts& budget : group_power) budget *= factor;
    rack_.enforce_allocation(group_power);
    draw = rack_.total_draw();
    step = Enforcer::plan_step(decision, renewable, draw, plant_, dt);
    GH_DEBUG << "substep @" << now.value() << "min: degraded allocation by "
             << factor;
    if (Telemetry* t = tel::current()) {
      t->metrics().counter("gh_degraded_substeps_total").increment();
      // The emergency re-enforcement above quantised every group again.
      t->metrics()
          .counter("gh_dvfs_quantization_passes_total")
          .increment(static_cast<double>(group_power.size()));
    }
  }

  // EPU bookkeeping: green power offered to the servers this step, computed
  // against pre-execution battery availability.
  const Watts green_planned =
      max(Watts{0.0}, decision.server_budget - decision.from_grid);
  Watts green_available = renewable;
  if (decision.from_battery.value() > 0.0) {
    green_available += plant_.battery_discharge_available(dt);
  }
  const Watts offered = min(green_planned, green_available);
  run_epu_.record(offered, step.flows.green_to_load(), dt);
  stats.epu.record(offered, step.flows.green_to_load(), dt);

  const PowerFlows flows = plant_.execute(step.flows, now, dt);
  ledger_.post(flows, dt);

  if (tel::LossLedger* loss = tel::loss_ledger()) {
    tel::LossLedger::StepInputs in;
    in.renewable_w = flows.renewable_total().value();
    in.battery_to_load_w = flows.battery_to_load.value();
    in.grid_to_load_w = flows.grid_to_load.value();
    in.renewable_to_battery_w = flows.renewable_to_battery.value();
    in.grid_to_battery_w = flows.grid_to_battery.value();
    in.curtailed_w = flows.renewable_curtailed.value();
    in.load_w = flows.load().value();
    in.shortfall_w = step.shortfall.value();
    in.round_trip_efficiency = plant_.battery().round_trip_efficiency();
    in.source_fault_active = plant_.source_fault_active();
    in.gaps = Enforcer::attribute_gaps(rack_, group_power);
    loss->post_step(in);
  }

  if (checker_) {
    check::InvariantChecker::SubstepContext ctx;
    ctx.rack = &rack_;
    ctx.plant = &plant_;
    ctx.flows = flows;
    ctx.renewable_available = renewable;
    ctx.shortfall = step.shortfall;
    ctx.now = now;
    checker_->check_substep(ctx);
  }

  rack_.accumulate(dt);
  stats.observe(flows, renewable, rack_.total_throughput(), step.shortfall);
  return flows;
}

}  // namespace greenhetero
