// Run report: per-epoch records and run-level aggregates of one simulation.
//
// This is what every bench prints from — each Figure 8/11 series is a column
// of the epoch records, each Figure 9/10/12/13/14 bar is an aggregate.
#pragma once

#include <vector>

#include "power/energy_ledger.h"
#include "power/power_bus.h"
#include "telemetry/metrics.h"
#include "util/csv.h"
#include "util/units.h"

namespace greenhetero::checkpoint {
class Writer;
class Reader;
}  // namespace greenhetero::checkpoint

namespace greenhetero {

struct EpochRecord {
  Minutes start{0.0};
  bool training = false;
  PowerCase source_case = PowerCase::kRenewableSufficient;
  Watts predicted_renewable{0.0};
  Watts actual_renewable{0.0};  ///< epoch mean
  Watts budget{0.0};            ///< server power budget the solver split
  std::vector<double> ratios;   ///< PAR per group
  double throughput = 0.0;      ///< epoch-mean rack throughput
  double epu = 0.0;             ///< epoch EPU
  double battery_soc = 0.0;     ///< state of charge at epoch end
  Watts battery_discharge{0.0}; ///< epoch-mean battery-to-load power
  Watts battery_charge{0.0};    ///< epoch-mean charging input power
  Watts grid_power{0.0};        ///< epoch-mean grid draw (load + charging)
  Watts shortfall{0.0};         ///< epoch-mean unmet planned load
};

/// Checkpoint serialization of one epoch record (the resumable run keeps
/// the completed-epoch history so the final report matches byte for byte).
void save_state(checkpoint::Writer& w, const EpochRecord& record);
void load_state(checkpoint::Reader& r, EpochRecord& record);

struct RunReport {
  std::vector<EpochRecord> epochs;
  /// True when the run was cut short by a stop request (SIGINT/SIGTERM):
  /// the report covers only the completed epochs, and a final checkpoint
  /// was written if checkpointing was configured.
  bool interrupted = false;
  EnergyLedger ledger;
  double total_work = 0.0;      ///< metric-unit-hours of useful work
  double overall_epu = 0.0;     ///< energy-weighted EPU of the whole run
  double battery_cycles = 0.0;  ///< equivalent DoD-deep cycles consumed
  double grid_cost = 0.0;       ///< $ (energy + demand charge)
  WattHours grid_energy{0.0};
  /// Metrics accumulated by the simulator's telemetry over this run (empty
  /// when telemetry is disabled).
  telemetry::MetricsSnapshot metrics;

  /// Mean rack throughput over non-training epochs.
  [[nodiscard]] double mean_throughput() const;
  /// Mean throughput restricted to epochs where green supply fell short of
  /// demand (the paper's "renewable power is insufficient" analysis).
  [[nodiscard]] double mean_throughput_insufficient() const;
  /// Mean PAR of group `g` over non-training epochs with a live budget.
  [[nodiscard]] double mean_ratio(std::size_t g) const;
  [[nodiscard]] int epochs_in_case(PowerCase c) const;

  /// Full per-epoch dump for plotting.
  [[nodiscard]] CsvTable to_csv() const;
};

}  // namespace greenhetero
