// Structure-of-arrays storage for completed EpochRecords.
//
// The flat fleet kept one std::vector<EpochRecord> per rack; at 10k racks a
// year-long run means 87.6M records, each carrying its own heap-allocated
// ratios vector — the allocator churn and per-record overhead, not the
// payload, are what blow the memory budget.  This store keeps the history
// as epoch-major column vectors (one contiguous double column per scalar
// field, one shared flat pool for the PAR ratios with per-record extents),
// so a record costs exactly its payload bytes and appending an epoch is a
// handful of bulk extends.
//
// Layout: slot(e, r) = e * racks + r.  Epoch-major keeps one epoch's row —
// the unit both the fleet loop and the checkpoint restore append — hot and
// contiguous.  Records are reconstructed on demand (get / fill_report); the
// store itself never hands out pointers, so growth never invalidates a
// caller.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/run_report.h"

namespace greenhetero::checkpoint {
class Writer;
class Reader;
}  // namespace greenhetero::checkpoint

namespace greenhetero {

class EpochRecordStore {
 public:
  /// Drop the history and fix the rack count (columns stride by it).
  void reset(std::size_t racks);

  [[nodiscard]] std::size_t racks() const { return racks_; }
  /// Completed epochs (every rack appends once per epoch).
  [[nodiscard]] std::size_t epochs() const {
    return racks_ == 0 ? 0 : start_.size() / racks_;
  }
  [[nodiscard]] bool empty() const { return start_.empty(); }

  /// Append one epoch across every rack; row[r] is rack r's record (its
  /// ratios are copied into the shared pool).  row.size() must equal
  /// racks().
  void append_epoch(std::span<const EpochRecord> row);
  /// Single-rack convenience (racks() == 1): append one record.
  void append(const EpochRecord& record);

  /// Reconstruct one record.
  [[nodiscard]] EpochRecord get(std::size_t rack, std::size_t epoch) const;
  /// Append every completed epoch of one rack to `out`, first to last —
  /// how RunReport::epochs is assembled at report time.
  void fill_report(std::size_t rack, std::vector<EpochRecord>& out) const;

  /// Bytes currently reserved by the columns and the ratio pool (the
  /// bench-gated "peak buffer" figure).
  [[nodiscard]] std::size_t bytes() const;

  /// Checkpoint the full history as bulk column arrays.
  void save_state(checkpoint::Writer& w) const;
  void load_state(checkpoint::Reader& r);

 private:
  [[nodiscard]] std::size_t slot(std::size_t rack, std::size_t epoch) const {
    return epoch * racks_ + rack;
  }

  std::size_t racks_ = 0;
  // One column per EpochRecord scalar field, indexed by slot().
  std::vector<double> start_;
  std::vector<std::uint8_t> training_;
  std::vector<std::uint8_t> source_case_;
  std::vector<double> predicted_;
  std::vector<double> actual_;
  std::vector<double> budget_;
  std::vector<double> throughput_;
  std::vector<double> epu_;
  std::vector<double> soc_;
  std::vector<double> discharge_;
  std::vector<double> charge_;
  std::vector<double> grid_;
  std::vector<double> shortfall_;
  // PAR ratios: one shared pool, per-slot end offsets (slot i's ratios are
  // pool[end[i-1] .. end[i]), slot 0 starting at 0).
  std::vector<double> ratios_pool_;
  std::vector<std::uint64_t> ratio_end_;
};

}  // namespace greenhetero
