#include "sim/sim_clock.h"

#include <cmath>

#include "checkpoint/serializer.h"

namespace greenhetero {

SimClock::SimClock(Minutes epoch, Minutes substep)
    : epoch_(epoch), substep_(substep) {
  if (epoch.value() <= 0.0 || substep.value() <= 0.0) {
    throw std::invalid_argument("clock: epoch and substep must be positive");
  }
  const double ratio = epoch.value() / substep.value();
  substeps_ = static_cast<std::size_t>(std::llround(ratio));
  if (substeps_ == 0 ||
      std::fabs(ratio - static_cast<double>(substeps_)) > 1e-9) {
    throw std::invalid_argument(
        "clock: epoch must be an integer multiple of the substep");
  }
}

double SimClock::hour_of_day() const {
  const double minutes_of_day = std::fmod(now_.value(), 24.0 * 60.0);
  return minutes_of_day / 60.0;
}

bool SimClock::advance_substep() {
  now_ += substep_;
  ++substep_in_epoch_;
  if (substep_in_epoch_ == substeps_) {
    substep_in_epoch_ = 0;
    ++epoch_index_;
    return true;
  }
  return false;
}

void SimClock::reset() {
  now_ = Minutes{0.0};
  substep_in_epoch_ = 0;
  epoch_index_ = 0;
}

void SimClock::save_state(checkpoint::Writer& w) const {
  w.f64(now_.value());
  w.u64(substep_in_epoch_);
  w.u64(epoch_index_);
}

void SimClock::load_state(checkpoint::Reader& r) {
  now_ = Minutes{r.f64()};
  substep_in_epoch_ = static_cast<std::size_t>(r.u64());
  epoch_index_ = static_cast<std::size_t>(r.u64());
}

}  // namespace greenhetero
