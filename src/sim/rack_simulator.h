// Rack simulator: the epoch/substep engine that drives one rack, one power
// plant and one GreenHetero controller through simulated time.
//
// Per epoch it mirrors the paper's runtime loop: plan (training run or
// predict -> select sources -> solve -> enforce), then per substep cover the
// rack's actual draw renewable-first / battery / grid, degrade the
// enforcement if the plan overshot what the sources can deliver, meter every
// flow, and at epoch end feed observations back (predictors + database).
//
// Two plant factories cover the evaluation's setups: the standard solar +
// battery + grid plant of the 24-hour runs, and a constant-budget plant
// (battery and grid disabled) for the fixed-supply studies of Figures 3, 9
// and 10.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string_view>

#include "check/invariants.h"
#include "checkpoint/checkpoint.h"
#include "core/controller.h"
#include "core/enforcer.h"
#include "core/epu.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "server/power_cap.h"
#include "power/energy_ledger.h"
#include "power/power_bus.h"
#include "server/rack.h"
#include "sim/epoch_store.h"
#include "sim/run_report.h"
#include "sim/sim_clock.h"
#include "telemetry/stream_sink.h"
#include "telemetry/telemetry.h"
#include "trace/trace.h"

namespace greenhetero {

/// The paper's battery provision: 10 x 12V/100Ah lead-acid (12 kWh),
/// DoD 40%, 80% efficiency, 1300 rated cycles.
[[nodiscard]] BatterySpec paper_battery_spec();

/// Standard plant: given solar production, paper battery, budgeted grid.
[[nodiscard]] RackPowerPlant make_standard_plant(PowerTrace solar,
                                                 GridSpec grid = {});

/// Fixed-green-budget plant: constant renewable at `budget` for `duration`,
/// unusable battery, no grid — the Solver then receives exactly `budget`
/// every epoch (Figures 3/9/10 setup).
[[nodiscard]] RackPowerPlant make_fixed_budget_plant(Watts budget,
                                                     Minutes duration);

/// A scheduled workload switch: at `at` minutes from simulation start the
/// whole rack moves to `workload` (the paper's workloads "can be executed
/// iteratively"; arrivals of unseen workloads trigger training runs at
/// runtime — Algorithm 1 lines 3-5).
struct WorkloadSwitch {
  Minutes at{0.0};
  Workload workload = Workload::kSpecJbb;
};

struct SimConfig {
  ControllerConfig controller;
  Minutes substep{1.0};
  /// Optional rack power-demand trace (watts); when absent the rack always
  /// demands its full-tilt peak power.
  std::optional<PowerTrace> demand_trace;
  /// Optional workload arrival schedule, applied at epoch boundaries in
  /// order; entries must be sorted by time.
  std::vector<WorkloadSwitch> workload_schedule;
  /// Enforcement realism: false (default) applies the SPC's budget->state
  /// map instantly; true drives each group through a RAPL-style feedback
  /// capping loop instead (one control update per substep), so state
  /// changes lag the decision like real hardware capping does.
  bool rapl_enforcement = false;
  /// Metrics + trace configuration for this simulator's Telemetry instance.
  TelemetryConfig telemetry;
  /// Streaming trace sink: when set, run() drains the trace ring into this
  /// file after every epoch instead of letting events pile up for a final
  /// save_jsonl, capping trace memory at the sink's queue bound.  The file
  /// is byte-identical to the buffered writer's.  (Fleet-driven racks leave
  /// this unset; the coordinator owns the merged sink.)
  std::optional<telemetry::StreamSinkConfig> trace_stream;
  /// When non-empty, run() writes a metrics snapshot to this path every
  /// `metrics_flush_every` epochs (crash-safe: temp file + rename) and once
  /// more at the end, so a long run's metrics survive an abort.
  std::string metrics_out;
  int metrics_flush_every = 128;
  /// Deterministic fault schedule replayed against this rack (empty = no
  /// faults and exactly the fault-free behaviour, bit for bit).
  FaultPlan faults;
  /// Runtime invariant checking: evaluate the check/invariants.h registry on
  /// every substep and epoch, throwing check::InvariantViolation on the
  /// first failure.  The checker is pull-only (it never mutates simulator
  /// state or emits telemetry), so results are byte-identical either way;
  /// off (the default) costs one null-pointer test per substep.
  bool check = false;
  /// Durable checkpointing: when checkpoint_dir is non-empty, run() writes a
  /// versioned, checksummed snapshot of the complete resumable state every
  /// checkpoint_every epochs (temp file + rename, so a crash never leaves a
  /// torn checkpoint).  `greenhetero simulate --resume DIR` reloads the
  /// latest valid snapshot and continues to a byte-identical final report.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  /// Snapshots retained after each write (older ones pruned); <= 0 keeps
  /// every snapshot (the kill-at-every-epoch test matrix needs them all).
  int checkpoint_keep = 2;
  /// Fingerprint of the scenario configuration, stored in every snapshot and
  /// verified on resume so a checkpoint cannot silently resume a different
  /// scenario.  The CLI hashes its scenario-affecting flags; 0 skips none —
  /// the check always runs, 0 simply has to match 0.
  std::uint64_t config_hash = 0;
  /// Cooperative stop flag (the CLI's SIGINT/SIGTERM handler sets it).
  /// Checked at each epoch barrier: run() writes a final checkpoint (when
  /// configured), finalizes outputs for the completed epochs and returns
  /// with RunReport::interrupted set.
  const std::atomic<bool>* stop_flag = nullptr;

  /// Fail fast on configurations the engine cannot honour: non-positive
  /// substep, substep longer than the epoch, an unsorted workload schedule,
  /// out-of-range controller knobs.  Throws std::invalid_argument.
  void validate() const;
};

class RackSimulator {
 public:
  RackSimulator(Rack rack, RackPowerPlant plant, SimConfig config);

  [[nodiscard]] const Rack& rack() const { return rack_; }
  [[nodiscard]] const RackPowerPlant& plant() const { return plant_; }
  [[nodiscard]] GreenHeteroController& controller() { return controller_; }
  [[nodiscard]] const GreenHeteroController& controller() const {
    return controller_;
  }

  /// Populate the database out-of-band (the paper's "workload has executed
  /// before" steady state): runs the training sweep under ample power
  /// without touching the plant or the report.
  void pretrain();

  /// Simulate `duration` minutes and return the report.  May be called
  /// repeatedly; state (battery, database, predictors) carries over.
  RunReport run(Minutes duration);

  /// Advance exactly one scheduling epoch and return its record.  The fleet
  /// coordinator drives racks in lockstep through this; `run()` is a loop
  /// over it.  State carries over across calls.
  EpochRecord step_epoch();

  /// Replace the grid budget from the next planning decision on (the fleet
  /// coordinator reassigns shares of a datacenter-level budget per epoch).
  void set_grid_budget(Watts budget);

  /// Describe the next epoch's analytic solve without mutating anything —
  /// the fleet coordinator's batched pre-pass calls this after assigning
  /// grid shares.  valid is false when the next epoch will not run the
  /// analytic solver (see GreenHeteroController::peek_solve_request).
  [[nodiscard]] SolveRequest peek_epoch_solve() const;

  /// Offer a batch-computed solve for the next step_epoch.  Consumed (and
  /// cleared) by that epoch's plan whether or not it is accepted; the
  /// controller verifies it against the epoch's actual budget and models
  /// before accepting, so results are bit-identical either way.
  void set_presolved(PresolvedSolve presolved);

  /// Accumulated accounting since construction (used by run() and by the
  /// fleet coordinator to assemble reports).
  [[nodiscard]] const EnergyLedger& ledger() const { return ledger_; }
  [[nodiscard]] double overall_epu() const { return run_epu_.epu(); }
  [[nodiscard]] Minutes now() const { return clock_.now(); }
  /// Completed epochs since construction (the checkpoint cadence index).
  [[nodiscard]] std::size_t epoch_index() const {
    return clock_.epoch_index();
  }

  /// This simulator's telemetry context (metrics registry + trace ring).
  [[nodiscard]] Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const Telemetry& telemetry() const { return *telemetry_; }
  /// The streaming sink (null unless SimConfig::trace_stream was set).
  [[nodiscard]] telemetry::StreamingTraceSink* stream() {
    return stream_.get();
  }
  [[nodiscard]] const telemetry::StreamingTraceSink* stream() const {
    return stream_.get();
  }

  /// Close the trailing partial rollup window (if the aggregator is on) and
  /// emit it as a final "rollup" event.  run() calls this at the end; the
  /// fleet coordinator calls it per rack before writing artifacts.
  void flush_rollup();

  /// Dump the flight recorder: ring contents + a metrics snapshot + the
  /// fault plan rendered as "fault_plan_row" context rows (delivered/pending
  /// as of now).  No-op returning an empty path unless the recorder is
  /// enabled (TelemetryConfig::flightrec_dir).  Called automatically when
  /// the health tracker leaves normal or an invariant fires; callable
  /// directly for run-abort hooks.
  std::filesystem::path dump_flight_record(std::string_view reason);
  /// Snapshot of all metrics accumulated so far.
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const {
    return telemetry_->metrics().snapshot();
  }

  /// The invariant checker (counters for reporting); null unless
  /// SimConfig::check was set.
  [[nodiscard]] const check::InvariantChecker* checker() const {
    return checker_.get();
  }

  /// Serialize the complete resumable state (everything except what the
  /// configuration rebuilds deterministically) — RNG streams, sim clock,
  /// rack/plant/controller state, fault cursor, telemetry, completed-epoch
  /// history.  The streaming sink is NOT included; write_checkpoint /
  /// load_checkpoint handle it alongside.
  void save_state(checkpoint::Writer& w) const;
  void load_state(checkpoint::Reader& r);

  /// Write one snapshot of the full state (including the streaming sink's
  /// durable watermark) to SimConfig::checkpoint_dir.  Called by run() at
  /// the configured cadence; callable directly at any epoch barrier.
  void write_checkpoint();
  /// Restore from a loaded snapshot: validates the payload kind and the
  /// config fingerprint, restores the state and (in streaming mode)
  /// truncates + reopens the sink file at its durable watermark.  The next
  /// run() continues from the restored epoch.
  void load_checkpoint(const checkpoint::Snapshot& snapshot);

 private:
  struct EpochStats;  // defined in the .cpp

  EpochRecord step_epoch_impl();
  void run_training_epoch(const EpochPlan& plan, EpochRecord& record);
  void run_normal_epoch(const EpochPlan& plan, Watts demand_hint,
                        EpochRecord& record);
  /// Emit the authoritative epoch_plan trace event + epoch counters.
  void record_epoch_telemetry(const EpochRecord& record);
  /// One substep: cover the rack draw, degrade on shortfall, execute flows.
  PowerFlows execute_substep(const SourceDecision& decision,
                             std::vector<Watts>& group_power,
                             EpochStats& stats);
  [[nodiscard]] Watts demand_at(Minutes t) const;
  void apply_workload_schedule(Minutes now);
  /// Replay every fault action due at `now` (no-op without a fault plan).
  void apply_due_faults(Minutes now);
  void apply_fault_action(const FaultAction& action, Minutes now);

  /// RAPL mode: apply per-group caps through the feedback controllers.
  void enforce_with_rapl(std::span<const Watts> group_power);

  /// Hand the ring's events (and any new evictions) to the streaming sink;
  /// no-op without one.
  void drain_trace_to_stream();

  Rack rack_;
  RackPowerPlant plant_;
  SimConfig config_;
  /// unique_ptr: the registry is non-copyable and the fleet stores
  /// simulators in a vector, so the context must stay movable.
  std::unique_ptr<Telemetry> telemetry_;
  /// Engaged only when SimConfig::trace_stream is set (run()-driven path).
  std::unique_ptr<telemetry::StreamingTraceSink> stream_;
  /// Ring evictions already reported to the sink via note_dropped().
  std::uint64_t streamed_dropped_ = 0;
  /// Previous epoch's health state, for the flight-recorder trigger edge.
  HealthState last_health_ = HealthState::kNormal;
  GreenHeteroController controller_;
  SimClock clock_;
  EnergyLedger ledger_;
  EpuMeter run_epu_;
  std::size_t next_switch_ = 0;
  std::vector<PowerCapController> rapl_;  ///< one per group (RAPL mode)
  /// Engaged only when the plan is non-empty, so fault-free runs take no
  /// extra work (and stay byte-identical to pre-fault builds).
  std::optional<FaultInjector> injector_;
  /// Monitor dropout rate to restore when a monitor_dropout fault clears.
  double base_dropout_ = 0.0;
  /// While a solar *sensor* is stuck, the value it keeps reporting (the
  /// physical array is unaffected; only the controller's feedback lies).
  std::optional<Watts> solar_sensor_stuck_;
  /// Engaged only when SimConfig::check is set; the hot path tests the
  /// pointer once per substep when off.
  std::unique_ptr<check::InvariantChecker> checker_;
  /// Completed-epoch history for the standalone run() report (SoA columns,
  /// racks() == 1).  Lives on the simulator (not run()'s stack) so
  /// checkpoints capture it and a resumed run reproduces the full report,
  /// first epoch to last.
  EpochRecordStore epochs_;
  /// Set by load_checkpoint(); tells the next run() to continue from the
  /// restored epoch instead of starting a fresh report.
  bool resumed_ = false;
};

}  // namespace greenhetero
