#include "sim/epoch_store.h"

#include <stdexcept>
#include <string>

#include "checkpoint/serializer.h"

namespace greenhetero {

void EpochRecordStore::reset(std::size_t racks) {
  racks_ = racks;
  start_.clear();
  training_.clear();
  source_case_.clear();
  predicted_.clear();
  actual_.clear();
  budget_.clear();
  throughput_.clear();
  epu_.clear();
  soc_.clear();
  discharge_.clear();
  charge_.clear();
  grid_.clear();
  shortfall_.clear();
  ratios_pool_.clear();
  ratio_end_.clear();
}

void EpochRecordStore::append_epoch(std::span<const EpochRecord> row) {
  if (row.size() != racks_) {
    throw std::invalid_argument(
        "epoch store: row holds " + std::to_string(row.size()) +
        " records but the store is sized for " + std::to_string(racks_) +
        " racks");
  }
  for (const EpochRecord& rec : row) {
    start_.push_back(rec.start.value());
    training_.push_back(rec.training ? 1 : 0);
    source_case_.push_back(static_cast<std::uint8_t>(rec.source_case));
    predicted_.push_back(rec.predicted_renewable.value());
    actual_.push_back(rec.actual_renewable.value());
    budget_.push_back(rec.budget.value());
    throughput_.push_back(rec.throughput);
    epu_.push_back(rec.epu);
    soc_.push_back(rec.battery_soc);
    discharge_.push_back(rec.battery_discharge.value());
    charge_.push_back(rec.battery_charge.value());
    grid_.push_back(rec.grid_power.value());
    shortfall_.push_back(rec.shortfall.value());
    ratios_pool_.insert(ratios_pool_.end(), rec.ratios.begin(),
                        rec.ratios.end());
    ratio_end_.push_back(static_cast<std::uint64_t>(ratios_pool_.size()));
  }
}

void EpochRecordStore::append(const EpochRecord& record) {
  append_epoch(std::span<const EpochRecord>(&record, 1));
}

EpochRecord EpochRecordStore::get(std::size_t rack, std::size_t epoch) const {
  const std::size_t i = slot(rack, epoch);
  EpochRecord rec;
  rec.start = Minutes{start_[i]};
  rec.training = training_[i] != 0;
  rec.source_case = static_cast<PowerCase>(source_case_[i]);
  rec.predicted_renewable = Watts{predicted_[i]};
  rec.actual_renewable = Watts{actual_[i]};
  rec.budget = Watts{budget_[i]};
  const std::size_t begin =
      i == 0 ? 0 : static_cast<std::size_t>(ratio_end_[i - 1]);
  const std::size_t end = static_cast<std::size_t>(ratio_end_[i]);
  rec.ratios.assign(ratios_pool_.begin() + static_cast<std::ptrdiff_t>(begin),
                    ratios_pool_.begin() + static_cast<std::ptrdiff_t>(end));
  rec.throughput = throughput_[i];
  rec.epu = epu_[i];
  rec.battery_soc = soc_[i];
  rec.battery_discharge = Watts{discharge_[i]};
  rec.battery_charge = Watts{charge_[i]};
  rec.grid_power = Watts{grid_[i]};
  rec.shortfall = Watts{shortfall_[i]};
  return rec;
}

void EpochRecordStore::fill_report(std::size_t rack,
                                   std::vector<EpochRecord>& out) const {
  const std::size_t n = epochs();
  out.reserve(out.size() + n);
  for (std::size_t e = 0; e < n; ++e) out.push_back(get(rack, e));
}

std::size_t EpochRecordStore::bytes() const {
  std::size_t total = 0;
  const auto count = [&total](const auto& column) {
    total += column.capacity() * sizeof(column[0]);
  };
  count(start_);
  count(training_);
  count(source_case_);
  count(predicted_);
  count(actual_);
  count(budget_);
  count(throughput_);
  count(epu_);
  count(soc_);
  count(discharge_);
  count(charge_);
  count(grid_);
  count(shortfall_);
  count(ratios_pool_);
  count(ratio_end_);
  return total;
}

void EpochRecordStore::save_state(checkpoint::Writer& w) const {
  w.seq(racks_);
  w.f64_array(start_);
  w.u8_array(training_);
  w.u8_array(source_case_);
  w.f64_array(predicted_);
  w.f64_array(actual_);
  w.f64_array(budget_);
  w.f64_array(throughput_);
  w.f64_array(epu_);
  w.f64_array(soc_);
  w.f64_array(discharge_);
  w.f64_array(charge_);
  w.f64_array(grid_);
  w.f64_array(shortfall_);
  w.f64_array(ratios_pool_);
  checkpoint::save(w, ratio_end_);
}

void EpochRecordStore::load_state(checkpoint::Reader& r) {
  racks_ = r.seq();
  r.f64_array(start_);
  r.u8_array(training_);
  r.u8_array(source_case_);
  r.f64_array(predicted_);
  r.f64_array(actual_);
  r.f64_array(budget_);
  r.f64_array(throughput_);
  r.f64_array(epu_);
  r.f64_array(soc_);
  r.f64_array(discharge_);
  r.f64_array(charge_);
  r.f64_array(grid_);
  r.f64_array(shortfall_);
  r.f64_array(ratios_pool_);
  checkpoint::load(r, ratio_end_);

  const std::size_t slots = start_.size();
  const bool aligned =
      (racks_ == 0 ? slots == 0 : slots % racks_ == 0) &&
      training_.size() == slots && source_case_.size() == slots &&
      predicted_.size() == slots && actual_.size() == slots &&
      budget_.size() == slots && throughput_.size() == slots &&
      epu_.size() == slots && soc_.size() == slots &&
      discharge_.size() == slots && charge_.size() == slots &&
      grid_.size() == slots && shortfall_.size() == slots &&
      ratio_end_.size() == slots;
  if (!aligned) {
    throw checkpoint::CheckpointError(
        "epoch store: column lengths disagree (corrupt snapshot)");
  }
  std::uint64_t prev = 0;
  for (std::uint64_t end : ratio_end_) {
    if (end < prev) {
      throw checkpoint::CheckpointError(
          "epoch store: ratio extents are not monotone");
    }
    prev = end;
  }
  if (prev != ratios_pool_.size()) {
    throw checkpoint::CheckpointError(
        "epoch store: ratio pool length disagrees with the extents");
  }
  for (std::uint8_t c : source_case_) {
    if (c > static_cast<std::uint8_t>(PowerCase::kGridFallback)) {
      throw checkpoint::CheckpointError("epoch store: bad power case " +
                                        std::to_string(c));
    }
  }
}

}  // namespace greenhetero
