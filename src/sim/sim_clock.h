// Simulation clock: epoch/substep time arithmetic for the rack simulator.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "util/units.h"

namespace greenhetero::checkpoint {
class Writer;
class Reader;
}  // namespace greenhetero::checkpoint

namespace greenhetero {

class SimClock {
 public:
  SimClock(Minutes epoch, Minutes substep);

  [[nodiscard]] Minutes now() const { return now_; }
  [[nodiscard]] Minutes epoch_length() const { return epoch_; }
  [[nodiscard]] Minutes substep_length() const { return substep_; }
  [[nodiscard]] std::size_t substeps_per_epoch() const { return substeps_; }
  [[nodiscard]] std::size_t epoch_index() const { return epoch_index_; }

  /// Hour-of-day in [0, 24) for diurnal lookups.
  [[nodiscard]] double hour_of_day() const;

  /// Advance one substep; returns true when this crossed an epoch boundary.
  bool advance_substep();

  void reset();

  void save_state(checkpoint::Writer& w) const;
  void load_state(checkpoint::Reader& r);

 private:
  Minutes epoch_;
  Minutes substep_;
  std::size_t substeps_;
  Minutes now_{0.0};
  std::size_t substep_in_epoch_ = 0;
  std::size_t epoch_index_ = 0;
};

}  // namespace greenhetero
