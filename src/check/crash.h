// Crash-recovery fuzzer: SIGKILL a real fleet run mid-flight, resume it
// from its checkpoints, and prove the outputs come out byte-identical.
//
// Each run derives a fleet scenario (rack count, duration, thread count,
// grid-share mode) from (seed, run index), then executes it twice through
// the actual `greenhetero fleet` binary:
//
//   reference  — uninterrupted, checkpointing enabled, to completion;
//   crash      — same scenario in its own directory, SIGKILLed after a
//                random 25-250 ms delay (possibly several times, each
//                restart via --resume), then resumed once more to
//                completion.
//
// A run fails when the final streamed trace or rollup files differ by a
// single byte, or the metrics exposition differs outside the wall-clock
// series (latency histograms and queue/stall gauges, which legitimately
// depend on timing).  Kills that land before the first checkpoint, between
// epochs, mid-finalization or after completion are all fair game — resume
// must cope with every one of them.
//
// POSIX-only (fork/execv/SIGKILL); on other platforms run_crash_fuzzer
// reports zero runs executed.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace greenhetero::check {

struct CrashFuzzOptions {
  /// Path to the greenhetero CLI binary to drive (the fuzzer execs it).
  std::string binary;
  /// Scratch directory for per-run outputs, checkpoints and child logs;
  /// created if missing.
  std::filesystem::path work_dir;
  std::uint64_t seed = 1;
  int runs = 5;
  /// Upper bound on SIGKILLs delivered per run (the actual count is drawn
  /// per run in [1, max_kills]).
  int max_kills = 3;
  /// Progress / failure narration (null = silent).
  std::ostream* log = nullptr;
};

struct CrashFuzzReport {
  int runs_executed = 0;
  int runs_failed = 0;
  /// SIGKILLs that landed on a still-running child.
  int kills_delivered = 0;
  /// --resume invocations issued (kills + the final completing run each).
  int resumes = 0;
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const { return runs_failed == 0; }
};

/// Run the crash-recovery fuzz loop.  Throws std::runtime_error when the
/// harness itself cannot operate (missing binary, unwritable work dir);
/// scenario failures land in the report instead.
[[nodiscard]] CrashFuzzReport run_crash_fuzzer(const CrashFuzzOptions& options);

}  // namespace greenhetero::check
