#include "check/oracle.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/epu.h"

namespace greenhetero::check {

double oracle_perf_per_server(const GroupModel& group, double per_server_w) {
  // Deliberately restated from the paper (Eq. 6-7 semantics) rather than
  // calling GroupModel::perf_at: below the idle floor the server sleeps and
  // contributes nothing; above peak the curve is flat; negative projections
  // floor at zero.
  if (per_server_w < group.min_power.value()) return 0.0;
  const double p = std::min(per_server_w, group.max_power.value());
  const double value =
      group.fit.a * p * p + group.fit.b * p + group.fit.c;
  return value > 0.0 ? value : 0.0;
}

double oracle_objective(std::span<const GroupModel> groups,
                        std::span<const double> ratios, Watts total_supply) {
  double perf = 0.0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const double count = static_cast<double>(groups[i].count);
    const double per_server =
        std::max(0.0, ratios[i]) * total_supply.value() / count;
    perf += count * oracle_perf_per_server(groups[i], per_server);
  }
  return perf;
}

OracleSolution oracle_solve(std::span<const GroupModel> groups,
                            Watts total_supply, double granularity) {
  const int steps = std::max(1, static_cast<int>(std::lround(1.0 / granularity)));
  const double step = 1.0 / steps;
  std::vector<double> current(groups.size(), 0.0);
  OracleSolution best;
  best.ratios.assign(groups.size(), 0.0);
  best.perf = oracle_objective(groups, best.ratios, total_supply);

  // Enumerate every grid point of the simplex sum(r_i) <= 1 (the surplus is
  // the battery-charging share, so the last coordinate is NOT forced to take
  // the remainder).
  const auto enumerate = [&](auto&& self, std::size_t index,
                             int remaining) -> void {
    if (index + 1 == groups.size()) {
      for (int k = 0; k <= remaining; ++k) {
        current[index] = k * step;
        const double perf = oracle_objective(groups, current, total_supply);
        if (perf > best.perf) {
          best.perf = perf;
          best.ratios = current;
        }
      }
      return;
    }
    for (int k = 0; k <= remaining; ++k) {
      current[index] = k * step;
      self(self, index + 1, remaining - k);
    }
  };
  enumerate(enumerate, 0, steps);
  return best;
}

void ReferenceEpu::record(Watts green_supply, Watts useful_draw, Minutes dt) {
  const double supply_w = green_supply.value();
  const double useful_w = std::min(useful_draw.value(), supply_w);
  supplied_wh_ += supply_w * dt.value() / 60.0;
  useful_wh_ += useful_w * dt.value() / 60.0;
}

double ReferenceEpu::epu() const {
  if (supplied_wh_ <= 0.0) return 0.0;
  return std::clamp(useful_wh_ / supplied_wh_, 0.0, 1.0);
}

std::vector<GroupModel> random_group_models(Rng& rng, int max_groups) {
  const int n = rng.uniform_int(1, std::max(1, max_groups));
  std::vector<GroupModel> groups;
  groups.reserve(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) {
    GroupModel model;
    const double lo = rng.uniform(20.0, 120.0);
    // 1 in 10 instances: idle ~ peak (an almost-empty operating range, the
    // narrowest the validator accepts).
    const double width = rng.bernoulli(0.1) ? rng.uniform(0.2, 2.0)
                                            : rng.uniform(20.0, 150.0);
    const double hi = lo + width;
    double a;
    const int curvature = rng.uniform_int(0, 9);
    if (curvature == 0) {
      a = rng.uniform(-1e-7, 1e-7);  // l ~ 0: essentially linear
    } else if (curvature == 1) {
      a = rng.uniform(5e-4, 2e-2);   // inverted curvature (convex fit)
    } else {
      a = -rng.uniform(5e-4, 5e-2);  // the usual concave case
    }
    // Positive slope entering the range so the curve is not trivially dead.
    const double b = rng.uniform(1.0, 12.0) - 2.0 * a * lo;
    const double c = rng.uniform(-200.0, 50.0);
    model.fit = Quadratic{a, b, c};
    model.min_power = Watts{lo};
    model.max_power = Watts{hi};
    model.count = rng.uniform_int(1, 6);
    groups.push_back(model);
  }
  return groups;
}

Watts random_supply(Rng& rng) { return Watts{rng.uniform(100.0, 3000.0)}; }

std::string OracleDisagreement::describe() const {
  std::ostringstream out;
  out << what << " (fast=" << fast_perf << ", reference=" << reference_perf
      << ", supply=" << supply_w << " W";
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const GroupModel& g = groups[i];
    out << "; g" << i << ": a=" << g.fit.a << " b=" << g.fit.b
        << " c=" << g.fit.c << " range=[" << g.min_power.value() << ","
        << g.max_power.value() << "]W count=" << g.count;
  }
  out << ")";
  return out.str();
}

namespace {

double tolerance(const OracleConfig& config, double scale) {
  return std::max(config.abs_tolerance,
                  config.rel_tolerance * std::fabs(scale));
}

/// Structural validity of a fast solution; returns a complaint or "".
std::string structural_complaint(const Allocation& a, std::size_t expected) {
  if (a.ratios.size() != expected) return "wrong ratio-vector size";
  double sum = 0.0;
  for (double r : a.ratios) {
    if (!std::isfinite(r)) return "non-finite ratio";
    if (r < -1e-9) return "negative ratio";
    sum += r;
  }
  if (sum > 1.0 + 1e-6) return "ratios sum beyond 1";
  if (!std::isfinite(a.predicted_perf)) return "non-finite predicted perf";
  return "";
}

}  // namespace

OracleReport run_oracle(std::uint64_t seed, int runs,
                        const OracleConfig& config, const SolveFn& solve_fn) {
  OracleReport report;
  const Rng master(seed);
  for (int run = 0; run < runs; ++run) {
    Rng rng = master.fork(static_cast<std::uint64_t>(run));
    const std::vector<GroupModel> groups =
        random_group_models(rng, config.max_groups);
    const Watts supply = random_supply(rng);
    ++report.runs;

    const auto disagree = [&](std::string what, double fast,
                              double reference) {
      report.disagreements.push_back(OracleDisagreement{
          std::move(what), groups, supply.value(), fast, reference});
    };

    const OracleSolution reference =
        oracle_solve(groups, supply, config.granularity);

    // (a)+(b)+(c): the main solver (or the injected replacement).  Beyond
    // 3 groups the production grid-refine path does not apply; the greedy
    // N-group solver is the fast reference there.
    Allocation fast;
    try {
      fast = solve_fn          ? solve_fn(groups, supply)
             : groups.size() <= 3 ? Solver::solve(groups, supply)
                                  : Solver::solve_n(groups, supply);
    } catch (const std::exception& e) {
      disagree(std::string("solver rejected a valid instance: ") + e.what(),
               0.0, reference.perf);
      continue;
    }
    const std::string complaint =
        structural_complaint(fast, groups.size());
    if (!complaint.empty()) {
      disagree("fast solution invalid: " + complaint, fast.predicted_perf,
               reference.perf);
      continue;
    }
    const double audited = oracle_objective(groups, fast.ratios, supply);
    if (std::fabs(fast.predicted_perf - audited) >
        tolerance(config, audited)) {
      disagree("claimed objective disagrees with the oracle's evaluation of "
               "the returned ratios",
               fast.predicted_perf, audited);
      continue;
    }
    if (fast.predicted_perf < reference.perf - tolerance(config,
                                                         reference.perf)) {
      disagree("fast solver fell below the brute-force grid optimum",
               fast.predicted_perf, reference.perf);
      continue;
    }

    if (!solve_fn) {
      // (d) subset-activation variant: waking every server is always one of
      // its options, so it must dominate the whole-group optimum.  Like
      // grid-refine it only supports up to 3 groups.
      if (groups.size() <= 3) try {
        const Allocation subset = Solver::solve_subset(groups, supply);
        const std::string subset_complaint =
            structural_complaint(subset, groups.size());
        if (!subset_complaint.empty()) {
          disagree("subset solution invalid: " + subset_complaint,
                   subset.predicted_perf, reference.perf);
        } else if (subset.predicted_perf <
                   reference.perf - tolerance(config, reference.perf)) {
          disagree("subset solver fell below the brute-force grid optimum",
                   subset.predicted_perf, reference.perf);
        }
      } catch (const std::exception& e) {
        disagree(std::string("subset solver rejected a valid instance: ") +
                     e.what(),
                 0.0, reference.perf);
      }

      // (f) the closed-form N-group backend.  It claims exactness on the
      // continuous simplex, so it is held to tighter standards than the
      // grid backends: its claimed objective must match the oracle's
      // independent evaluation of its ratios to near machine precision, it
      // must dominate the grid-refine result (any feasible point bounds the
      // true optimum from below), and a warm start derived from its own
      // solution must reproduce it bit for bit.
      try {
        const Allocation analytic = Solver::solve_analytic_n(groups, supply);
        const std::string analytic_complaint =
            structural_complaint(analytic, groups.size());
        const double audited_n =
            oracle_objective(groups, analytic.ratios, supply);
        const double exact_tol =
            1e-6 * std::max(1.0, std::fabs(audited_n));
        if (!analytic_complaint.empty()) {
          disagree("analytic solution invalid: " + analytic_complaint,
                   analytic.predicted_perf, reference.perf);
        } else if (std::fabs(analytic.predicted_perf - audited_n) >
                   exact_tol) {
          disagree("analytic claimed objective disagrees with the oracle's "
                   "evaluation of the returned ratios",
                   analytic.predicted_perf, audited_n);
        } else if (analytic.predicted_perf <
                   fast.predicted_perf -
                       1e-9 * std::max(1.0,
                                       std::fabs(fast.predicted_perf))) {
          disagree("analytic solver fell below the fast solver",
                   analytic.predicted_perf, fast.predicted_perf);
        } else if (analytic.predicted_perf <
                   reference.perf - tolerance(config, reference.perf)) {
          disagree("analytic solver fell below the brute-force grid optimum",
                   analytic.predicted_perf, reference.perf);
        } else {
          const SolverHint warm = SolverHint::from(analytic);
          const Allocation rewarmed =
              Solver::solve_analytic_n(groups, supply, &warm);
          if (rewarmed.ratios != analytic.ratios ||
              rewarmed.predicted_perf != analytic.predicted_perf) {
            disagree("warm-started analytic solve diverged from the cold "
                     "solve",
                     rewarmed.predicted_perf, analytic.predicted_perf);
          }
        }
      } catch (const std::exception& e) {
        disagree(std::string("analytic solver rejected a valid instance: ") +
                     e.what(),
                 0.0, reference.perf);
      }
    }

    // (e) EPU accumulators agree on a random step sequence.
    Rng epu_rng = rng.fork(0xE9);
    EpuMeter meter;
    ReferenceEpu ref_epu;
    for (int s = 0; s < 40; ++s) {
      const Watts step_supply{epu_rng.uniform(0.0, 3000.0)};
      // Deliberately overshoot sometimes: both sides must cap at the supply.
      const Watts useful{step_supply.value() * epu_rng.uniform(0.0, 1.2)};
      const Minutes dt{epu_rng.uniform(0.1, 10.0)};
      meter.record(step_supply, useful, dt);
      ref_epu.record(step_supply, useful, dt);
    }
    if (std::fabs(meter.epu() - ref_epu.epu()) > 1e-9) {
      disagree("EpuMeter disagrees with the reference EPU accumulator",
               meter.epu(), ref_epu.epu());
    }
  }
  return report;
}

}  // namespace greenhetero::check
