// Seed-replayable scenario fuzzer with greedy shrinking.
//
// Each run derives a complete random scenario — rack composition, workload
// mix, solar traces, policies, substep length, demand pattern and fault
// plan — purely from (seed, run index), builds the same fleet twice, and
// executes it sequentially (1 thread, 1 shard) and in parallel (4 threads,
// a derived 1-3 shard hierarchy) with the runtime invariant checker enabled
// on every rack and on the coordinator.
// A run fails when any invariant trips, the two executions diverge in any
// report field or trace byte, a post-run audit (energy conservation, EPU
// bounds, per-epoch PAR vectors) rejects the report, or the differential
// solver oracle flags a disagreement on the run's side instances.
//
// On failure the fuzzer greedily shrinks the scenario — fewer epochs, then
// fewer racks, then fewer fault events — re-running each candidate, and
// reports a minimal scenario plus the exact `greenhetero fuzz ...` command
// line that replays it.  Shrinking is stable because every rack derives its
// parameters from an order-insensitive fork of the run RNG: dropping later
// racks, epochs or fault events leaves the surviving prefix bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace greenhetero::check {

/// One fully-resolved fuzz scenario: the RNG coordinates plus the three
/// shrinkable dimensions.  Rack/fleet details are re-derived from
/// (seed, run_index) at execution time.
struct FuzzScenario {
  std::uint64_t seed = 1;
  int run_index = 0;
  int racks = 1;
  int epochs = 4;
  /// Shard count for the parallel execution (the sequential reference is
  /// always the flat --shards 1 fleet), so every run also cross-checks the
  /// sharded hierarchy against the flat path byte for byte.
  int shards = 1;
  /// Number of fault events kept from the derived plan; -1 = all of them.
  int max_faults = -1;
  /// Solver-focused mode: every rack runs a solver-driven policy on the
  /// analytic backend, and the scenario is additionally executed cold
  /// (warm start off) and with the batched fleet pre-pass, all of which
  /// must be byte-identical to the warm sequential reference at 1 and 4
  /// threads.  The per-run differential oracle also samples more instances
  /// at a larger group count in this mode.
  bool solver = false;

  /// The exact CLI invocation that replays this scenario.
  [[nodiscard]] std::string command_line() const;
};

/// Test hook: applied to a copy of every non-training epoch's recorded PAR
/// vector before it is re-validated — a planted-bug harness for the fuzzer
/// itself (see fuzzer_test.cpp).
using AllocationMutation = std::function<void(std::vector<double>&)>;

struct FuzzOptions {
  std::uint64_t seed = 1;
  int runs = 25;
  /// Replay exactly this run index instead of 0..runs-1 (-1 = all).
  int only_run = -1;
  /// Overrides for the derived scenario dimensions (-1 = derive from the
  /// RNG); used to replay a shrunk repro.
  int racks = -1;
  int epochs = -1;
  int shards = -1;
  int max_faults = -1;
  /// Solver-focused mode (see FuzzScenario::solver).
  bool solver = false;
  /// Progress / failure narration (null = silent).
  std::ostream* log = nullptr;
  AllocationMutation allocation_mutation;
};

struct FuzzFailure {
  FuzzScenario scenario;
  std::string what;
};

struct FuzzReport {
  int runs_executed = 0;
  int scenarios_failed = 0;
  /// The first failing scenario as originally derived.
  std::optional<FuzzFailure> first_failure;
  /// The same failure after greedy shrinking (always set when a run failed;
  /// equals first_failure when nothing could be removed).
  std::optional<FuzzFailure> shrunk;

  [[nodiscard]] bool ok() const { return scenarios_failed == 0; }
};

/// Execute one scenario end to end; returns the failure description, or
/// nullopt when every check passed.
[[nodiscard]] std::optional<std::string> run_scenario(
    const FuzzScenario& scenario, const AllocationMutation& mutation = {});

/// The fuzz loop: derive, execute and (on failure) shrink `runs` scenarios.
/// Stops at the first failing run — the shrunk repro is worth more than a
/// tally of later failures from the same root cause.
[[nodiscard]] FuzzReport run_fuzzer(const FuzzOptions& options);

}  // namespace greenhetero::check
