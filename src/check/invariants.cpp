#include "check/invariants.h"

#include <cmath>
#include <sstream>

namespace greenhetero::check {

namespace {

/// Absolute watt tolerance for flow comparisons; conservation checks scale
/// it with the magnitudes involved so multi-kilowatt plants are not held to
/// sub-microwatt arithmetic.
constexpr double kWattTol = 1e-6;

double rel_tol(double scale) { return kWattTol * std::max(1.0, scale); }

constexpr InvariantInfo kRegistry[] = {
    {"substep-flows-finite",
     "every power flow is finite and non-negative"},
    {"substep-energy-conservation",
     "load + shortfall equals the rack draw, and renewable flows sum to the "
     "metered availability"},
    {"substep-single-charging-source",
     "the battery never charges from renewable and grid simultaneously"},
    {"substep-charge-xor-discharge",
     "the battery never charges while discharging"},
    {"substep-grid-within-budget",
     "grid draw (load + charging) never exceeds the per-rack budget"},
    {"substep-battery-soc-bounds",
     "battery stored energy stays within [DoD floor, effective capacity]"},
    {"substep-allocation-within-range",
     "every operating server draws within its [idle, peak] range (sleeping "
     "servers draw zero)"},
    {"epoch-par-ratios-valid",
     "PAR values are finite, non-negative and sum to at most 1"},
    {"epoch-epu-bounds", "epoch and run EPU lie in [0, 1]"},
    {"epoch-energy-conservation",
     "the energy ledger's conservation error stays ~0"},
    {"epoch-battery-dod-floor",
     "reported SoC respects the DoD floor and never exceeds 1"},
    {"epoch-loss-residual",
     "the loss ledger's bucket sum matches the supply residual within "
     "1e-6 W"},
    {"epoch-record-finite",
     "every numeric field of the epoch record is finite with the right sign"},
    {"epoch-shard-grant-conservation",
     "per-shard grid grants are finite, non-negative and never sum past the "
     "fleet budget"},
};

[[noreturn]] void raise(std::string_view name, std::string details,
                        double sim_minutes, long epoch_index,
                        long substep_index) {
  throw InvariantViolation(std::string(name), std::move(details), sim_minutes,
                           epoch_index, substep_index);
}

}  // namespace

InvariantViolation::InvariantViolation(std::string name, std::string details,
                                       double sim_minutes, long epoch_index,
                                       long substep_index)
    : std::runtime_error("invariant '" + name + "' violated at t=" +
                         std::to_string(sim_minutes) + "min (epoch " +
                         std::to_string(epoch_index) + ", substep " +
                         std::to_string(substep_index) + "): " + details),
      name_(std::move(name)),
      details_(std::move(details)),
      sim_minutes_(sim_minutes),
      epoch_index_(epoch_index),
      substep_index_(substep_index) {}

std::span<const InvariantInfo> invariant_registry() { return kRegistry; }

void InvariantChecker::fail(std::string_view name, std::string details,
                            double sim_minutes) const {
  raise(name, std::move(details), sim_minutes, static_cast<long>(epochs_),
        substep_in_epoch_);
}

void InvariantChecker::check_substep(const SubstepContext& ctx) {
  const double t = ctx.now.value();
  const PowerFlows& f = ctx.flows;

  // substep-flows-finite
  const double fields[] = {f.renewable_to_load.value(),
                           f.battery_to_load.value(),
                           f.grid_to_load.value(),
                           f.renewable_to_battery.value(),
                           f.grid_to_battery.value(),
                           f.renewable_curtailed.value(),
                           ctx.shortfall.value()};
  static constexpr const char* kFieldNames[] = {
      "renewable_to_load", "battery_to_load",      "grid_to_load",
      "renewable_to_battery", "grid_to_battery",   "renewable_curtailed",
      "shortfall"};
  for (std::size_t i = 0; i < std::size(fields); ++i) {
    if (!std::isfinite(fields[i]) || fields[i] < -kWattTol) {
      std::ostringstream msg;
      msg << kFieldNames[i] << " = " << fields[i] << " W";
      fail("substep-flows-finite", msg.str(), t);
    }
  }
  ++checks_;

  // substep-energy-conservation
  const double draw = ctx.rack->total_draw().value();
  const double covered = f.load().value() + ctx.shortfall.value();
  if (std::fabs(covered - draw) > rel_tol(draw)) {
    std::ostringstream msg;
    msg << "load " << f.load().value() << " W + shortfall "
        << ctx.shortfall.value() << " W != rack draw " << draw << " W";
    fail("substep-energy-conservation", msg.str(), t);
  }
  const double available = ctx.renewable_available.value();
  const double renewable_total = f.renewable_total().value();
  if (std::fabs(renewable_total - available) > rel_tol(available)) {
    std::ostringstream msg;
    msg << "renewable flows sum to " << renewable_total
        << " W but availability was " << available << " W";
    fail("substep-energy-conservation", msg.str(), t);
  }
  ++checks_;

  // substep-single-charging-source
  if (f.renewable_to_battery.value() > kWattTol &&
      f.grid_to_battery.value() > kWattTol) {
    std::ostringstream msg;
    msg << "renewable_to_battery " << f.renewable_to_battery.value()
        << " W and grid_to_battery " << f.grid_to_battery.value()
        << " W both active";
    fail("substep-single-charging-source", msg.str(), t);
  }
  ++checks_;

  // substep-charge-xor-discharge
  if (f.battery_input().value() > kWattTol &&
      f.battery_to_load.value() > kWattTol) {
    std::ostringstream msg;
    msg << "charging at " << f.battery_input().value()
        << " W while discharging " << f.battery_to_load.value() << " W";
    fail("substep-charge-xor-discharge", msg.str(), t);
  }
  ++checks_;

  // substep-grid-within-budget
  const double grid_draw = (f.grid_to_load + f.grid_to_battery).value();
  const double grid_budget = ctx.plant->grid().budget().value();
  if (grid_draw > grid_budget + rel_tol(grid_budget)) {
    std::ostringstream msg;
    msg << "grid draw " << grid_draw << " W exceeds budget " << grid_budget
        << " W" << (ctx.plant->grid().in_outage() ? " (outage active)" : "");
    fail("substep-grid-within-budget", msg.str(), t);
  }
  ++checks_;

  // substep-battery-soc-bounds
  const Battery& battery = ctx.plant->battery();
  const double stored = battery.stored().value();
  const double floor = battery.spec().floor_energy().value();
  const double ceiling = battery.effective_capacity().value();
  if (!std::isfinite(stored) || stored < floor - rel_tol(floor) ||
      stored > ceiling + rel_tol(ceiling)) {
    std::ostringstream msg;
    msg << "stored " << stored << " Wh outside [" << floor << ", " << ceiling
        << "] Wh (SoC " << battery.soc() << ")";
    fail("substep-battery-soc-bounds", msg.str(), t);
  }
  ++checks_;

  // substep-allocation-within-range
  const Rack& rack = *ctx.rack;
  for (std::size_t g = 0; g < rack.group_count(); ++g) {
    const PerfCurve& curve = rack.group_curve(g);
    const double idle = curve.idle_power().value();
    const double peak = curve.peak_power().value();
    const double rep = rack.group_representative(g).draw().value();
    if (rep > kWattTol && (rep < idle - kWattTol || rep > peak + kWattTol)) {
      std::ostringstream msg;
      msg << "group " << g << " server draws " << rep << " W outside ["
          << idle << ", " << peak << "] W";
      fail("substep-allocation-within-range", msg.str(), t);
    }
    const double group = rack.group_draw(g).value();
    const double cap = peak * static_cast<double>(rack.group(g).count);
    if (!std::isfinite(group) || group < -kWattTol ||
        group > cap + rel_tol(cap)) {
      std::ostringstream msg;
      msg << "group " << g << " draws " << group << " W, cap " << cap << " W";
      fail("substep-allocation-within-range", msg.str(), t);
    }
  }
  ++checks_;

  ++substeps_;
  ++substep_in_epoch_;
}

void InvariantChecker::check_ratios(std::span<const double> ratios,
                                    double sim_minutes, long epoch_index) {
  double sum = 0.0;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    if (!std::isfinite(ratios[i]) || ratios[i] < -1e-9) {
      std::ostringstream msg;
      msg << "ratio[" << i << "] = " << ratios[i];
      raise("epoch-par-ratios-valid", msg.str(), sim_minutes, epoch_index, -1);
    }
    sum += ratios[i];
  }
  if (sum > 1.0 + 1e-6) {
    std::ostringstream msg;
    msg << "ratios sum to " << sum << " > 1";
    raise("epoch-par-ratios-valid", msg.str(), sim_minutes, epoch_index, -1);
  }
}

void InvariantChecker::check_grid_shares(std::span<const Watts> shares,
                                         Watts total, double sim_minutes,
                                         long epoch_index) {
  double sum = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const double share = shares[i].value();
    if (!std::isfinite(share) || share < -kWattTol) {
      std::ostringstream msg;
      msg << "grid share[" << i << "] = " << share << " W";
      raise("substep-grid-within-budget", msg.str(), sim_minutes, epoch_index,
            -1);
    }
    sum += share;
  }
  if (sum > total.value() + rel_tol(total.value())) {
    std::ostringstream msg;
    msg << "grid shares sum to " << sum << " W, fleet budget "
        << total.value() << " W";
    raise("substep-grid-within-budget", msg.str(), sim_minutes, epoch_index,
          -1);
  }
}

void InvariantChecker::check_shard_grants(std::span<const Watts> grants,
                                          Watts total, double sim_minutes,
                                          long epoch_index) {
  double sum = 0.0;
  for (std::size_t s = 0; s < grants.size(); ++s) {
    const double grant = grants[s].value();
    if (!std::isfinite(grant) || grant < -kWattTol) {
      std::ostringstream msg;
      msg << "shard grant[" << s << "] = " << grant << " W";
      raise("epoch-shard-grant-conservation", msg.str(), sim_minutes,
            epoch_index, -1);
    }
    sum += grant;
  }
  if (sum > total.value() + rel_tol(total.value())) {
    std::ostringstream msg;
    msg << "shard grants sum to " << sum << " W, fleet budget "
        << total.value() << " W";
    raise("epoch-shard-grant-conservation", msg.str(), sim_minutes,
          epoch_index, -1);
  }
}

void InvariantChecker::check_epoch(const EpochContext& ctx) {
  const EpochRecord& r = *ctx.record;
  const double t = r.start.value();
  substep_in_epoch_ = -1;  // epoch-level context in violations

  // epoch-par-ratios-valid
  check_ratios(r.ratios, t, static_cast<long>(epochs_));
  ++checks_;

  // epoch-epu-bounds
  if (!std::isfinite(r.epu) || r.epu < 0.0 || r.epu > 1.0 + 1e-9) {
    fail("epoch-epu-bounds", "epoch EPU = " + std::to_string(r.epu), t);
  }
  if (!std::isfinite(ctx.run_epu) || ctx.run_epu < 0.0 ||
      ctx.run_epu > 1.0 + 1e-9) {
    fail("epoch-epu-bounds", "run EPU = " + std::to_string(ctx.run_epu), t);
  }
  ++checks_;

  // epoch-energy-conservation
  const double error = ctx.ledger->conservation_error();
  if (!(error <= 1e-5)) {  // catches NaN too
    fail("epoch-energy-conservation",
         "ledger conservation error = " + std::to_string(error) + " Wh", t);
  }
  ++checks_;

  // epoch-battery-dod-floor
  if (!std::isfinite(r.battery_soc) || r.battery_soc < ctx.floor_soc - 1e-6 ||
      r.battery_soc > 1.0 + 1e-9) {
    std::ostringstream msg;
    msg << "SoC " << r.battery_soc << " outside [" << ctx.floor_soc << ", 1]";
    fail("epoch-battery-dod-floor", msg.str(), t);
  }
  ++checks_;

  // epoch-loss-residual
  if (ctx.loss != nullptr) {
    const double residual = ctx.loss->invariant_error_w();
    if (!(residual <= 1e-6)) {
      fail("epoch-loss-residual",
           "loss-ledger residual = " + std::to_string(residual) + " W", t);
    }
    ++checks_;
  }

  // epoch-record-finite
  const double values[] = {r.predicted_renewable.value(),
                           r.actual_renewable.value(),
                           r.budget.value(),
                           r.throughput,
                           r.battery_discharge.value(),
                           r.battery_charge.value(),
                           r.grid_power.value(),
                           r.shortfall.value()};
  static constexpr const char* kNames[] = {
      "predicted_renewable", "actual_renewable", "budget", "throughput",
      "battery_discharge",   "battery_charge",   "grid_power", "shortfall"};
  for (std::size_t i = 0; i < std::size(values); ++i) {
    // predicted_renewable is a forecast and may legitimately be clamped to
    // 0 elsewhere; everything recorded here must be finite and, except for
    // the forecast, non-negative.
    const bool sign_ok = i == 0 || values[i] >= -kWattTol;
    if (!std::isfinite(values[i]) || !sign_ok) {
      std::ostringstream msg;
      msg << kNames[i] << " = " << values[i];
      fail("epoch-record-finite", msg.str(), t);
    }
  }
  ++checks_;

  ++epochs_;
  substep_in_epoch_ = 0;
}

}  // namespace greenhetero::check
