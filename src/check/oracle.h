// Differential solver oracle: an independent brute-force reference for the
// Solver's quadratic Perf maximisation, plus a reference EPU accumulator.
//
// The oracle re-derives the clamped projection semantics (paper Equations
// 6-7) and the simplex objective from scratch — it shares no code with
// core/solver.cpp — and enumerates the ratio simplex at a configurable
// resolution.  Because the grid is a subset of the feasible region, the
// oracle's objective value is a *lower bound* on the true optimum: a correct
// fast solver must never fall meaningfully below it, and its claimed
// predicted_perf must agree with the oracle's independent evaluation of the
// returned ratios.
//
// run_oracle() is the differential harness: randomized GroupModel sets —
// deliberately including degenerate fits (curvature l ~ 0, inverted/convex
// curvature, idle ~ peak) — are solved by Solver::solve and the
// subset-activation variant and compared against the oracle; the reference
// EPU accumulator is cross-checked against EpuMeter over random step
// sequences in the same pass.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/solver.h"
#include "util/rng.h"
#include "util/units.h"

namespace greenhetero::check {

struct OracleConfig {
  /// Ratio-simplex step of the brute-force enumeration.
  double granularity = 0.02;
  /// Relative slack when comparing objective values (absorbs the coarse
  /// grid and the backends' refinement precision).
  double rel_tolerance = 0.02;
  /// Absolute slack in objective units (dominates near-zero objectives).
  double abs_tolerance = 1.0;
  /// Group sets per run (each also gets a subset-solver and an EPU check).
  int max_groups = 3;
};

/// Independent clamped per-server projection (zero below idle, flat above
/// peak, floored at zero) — the oracle's own restatement of
/// GroupModel::perf_at.
[[nodiscard]] double oracle_perf_per_server(const GroupModel& group,
                                            double per_server_w);

/// Independent rack objective for an arbitrary ratio vector.
[[nodiscard]] double oracle_objective(std::span<const GroupModel> groups,
                                      std::span<const double> ratios,
                                      Watts total_supply);

struct OracleSolution {
  std::vector<double> ratios;
  double perf = 0.0;
};

/// Enumerate the ratio simplex at `granularity` and return the best grid
/// point.  Exhaustive and slow by design; supports any group count.
[[nodiscard]] OracleSolution oracle_solve(std::span<const GroupModel> groups,
                                          Watts total_supply,
                                          double granularity);

/// Reference EPU accumulator: plain running energy sums, independent of
/// core/epu.cpp.
class ReferenceEpu {
 public:
  void record(Watts green_supply, Watts useful_draw, Minutes dt);
  [[nodiscard]] double epu() const;

 private:
  double supplied_wh_ = 0.0;
  double useful_wh_ = 0.0;
};

/// Random solver instances for the harness (also reused by tests and the
/// scenario fuzzer).  Draws group count, power ranges, curvature — with a
/// deliberate share of degenerate fits — and the supply level from `rng`.
[[nodiscard]] std::vector<GroupModel> random_group_models(Rng& rng,
                                                          int max_groups = 3);
[[nodiscard]] Watts random_supply(Rng& rng);

/// One fast-vs-oracle mismatch, with enough detail to reproduce it offline.
struct OracleDisagreement {
  std::string what;
  std::vector<GroupModel> groups;
  double supply_w = 0.0;
  double fast_perf = 0.0;
  double reference_perf = 0.0;

  /// One-line human-readable rendering (instance coefficients included).
  [[nodiscard]] std::string describe() const;
};

struct OracleReport {
  int runs = 0;
  std::vector<OracleDisagreement> disagreements;
  [[nodiscard]] bool ok() const { return disagreements.empty(); }
};

/// Optional replacement for the solver under test (the fuzzer's mutation
/// harness injects deliberately broken solvers through this).
using SolveFn =
    std::function<Allocation(std::span<const GroupModel>, Watts)>;

/// The differential harness: `runs` random instances, each checked for
/// (a) structural validity of the fast solution, (b) agreement between the
/// fast solver's claimed objective and the oracle's independent evaluation
/// of its ratios, (c) the fast solver not falling below the brute-force
/// grid optimum, (d) the subset-activation solver dominating the
/// whole-group optimum, (e) EpuMeter matching the reference accumulator,
/// and (f) the closed-form analytic backend (Solver::solve_analytic_n)
/// matching the oracle to near machine precision, dominating both the
/// grid-refine solver and the brute-force optimum, and reproducing its own
/// solution bit for bit under a warm-start hint.
[[nodiscard]] OracleReport run_oracle(std::uint64_t seed, int runs,
                                      const OracleConfig& config = {},
                                      const SolveFn& solve_fn = {});

}  // namespace greenhetero::check
