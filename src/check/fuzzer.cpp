#include "check/fuzzer.h"

#include <array>
#include <cmath>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "check/invariants.h"
#include "check/oracle.h"
#include "faults/fault_plan.h"
#include "fleet/fleet.h"
#include "server/server_spec.h"
#include "trace/load_pattern.h"
#include "trace/solar.h"
#include "util/rng.h"
#include "workload/workload_spec.h"

namespace greenhetero::check {
namespace {

// Scenario geometry.  The epoch length is fixed (fleet lockstep requires a
// single length anyway) and the fault plan is always derived for the maximum
// run duration, so shrinking the epoch count never re-rolls the plan.
constexpr double kEpochMinutes = 15.0;
constexpr int kMaxEpochs = 10;
constexpr int kMaxRacks = 3;
/// Ascending-search ceiling when shrinking an unlimited fault budget; safely
/// above anything make_random_plan emits.
constexpr int kFaultShrinkCap = 24;
/// Total scenario re-executions the shrinker may spend.
constexpr int kShrinkBudget = 40;

/// The five CPU platforms (GPU racks need the Rodinia-only workload set and
/// are out of scope for the fuzzer's uniform-workload racks).
constexpr std::array<ServerModel, 5> kCpuModels = {
    ServerModel::kXeonE5_2620, ServerModel::kXeonE5_2650,
    ServerModel::kXeonE5_2603, ServerModel::kCoreI7_8700K,
    ServerModel::kCoreI5_4460};

/// Everything derived for one rack.  Derivation draws only from the rack's
/// own fork of the run RNG, so racks are independent and prefix-stable.
/// `warm_start` only matters in solver mode, where the scenario is executed
/// both warm and cold; it is applied after every RNG draw so both variants
/// derive byte-identical racks.
RackSimulator make_rack_sim(const FuzzScenario& scenario, int rack_index,
                            bool warm_start = true) {
  Rng rack_rng = Rng(scenario.seed)
                     .fork(static_cast<std::uint64_t>(scenario.run_index))
                     .fork(1000 + static_cast<std::uint64_t>(rack_index));

  const int group_count = rack_rng.uniform_int(1, 3);
  std::vector<ServerGroup> groups;
  for (int g = 0; g < group_count; ++g) {
    ServerGroup group;
    group.model = kCpuModels[static_cast<std::size_t>(
        rack_rng.uniform_int(0, static_cast<int>(kCpuModels.size()) - 1))];
    group.count = rack_rng.uniform_int(1, 4);
    groups.push_back(group);
  }

  const std::span<const Workload> pool = figure9_workloads();
  Workload workload =
      pool[static_cast<std::size_t>(rack_rng.uniform_int(
          0, static_cast<int>(pool.size()) - 1))];
  for (const ServerGroup& group : groups) {
    if (!default_catalog().runnable(group.model, workload)) {
      workload = Workload::kSpecJbb;
      break;
    }
  }
  Rack rack{std::move(groups), workload};

  SimConfig cfg;
  cfg.controller.policy = kAllPolicies[static_cast<std::size_t>(
      rack_rng.uniform_int(0, static_cast<int>(std::size(kAllPolicies)) - 1))];
  cfg.controller.epoch = Minutes{kEpochMinutes};
  cfg.controller.profiling_noise = rack_rng.uniform(0.0, 0.05);
  cfg.controller.seed =
      static_cast<std::uint64_t>(rack_rng.uniform_int(0, 1 << 30));
  constexpr std::array<double, 3> kSubsteps = {1.0, 2.5, 5.0};
  cfg.substep = Minutes{kSubsteps[static_cast<std::size_t>(
      rack_rng.uniform_int(0, 2))]};
  cfg.rapl_enforcement = rack_rng.bernoulli(0.2);
  cfg.telemetry.loss_ledger = rack_rng.bernoulli(0.5);
  cfg.check = true;

  if (rack_rng.bernoulli(0.5)) {
    cfg.demand_trace = generate_load_trace(
        LoadPatternModel{}, rack.peak_demand(), 1,
        static_cast<std::uint64_t>(rack_rng.uniform_int(0, 1 << 30)));
  }

  if (rack_rng.bernoulli(0.6)) {
    // Fixed-window derivation: the plan never depends on the (shrinkable)
    // epoch count; events past the run end simply never fire.
    FaultPlan plan = make_random_plan(
        static_cast<std::uint64_t>(rack_rng.uniform_int(0, 1 << 30)),
        Minutes{kMaxEpochs * kEpochMinutes}, rack.group_count());
    if (scenario.max_faults >= 0 &&
        plan.size() > static_cast<std::size_t>(scenario.max_faults)) {
      FaultPlan truncated;
      for (std::size_t i = 0;
           i < static_cast<std::size_t>(scenario.max_faults); ++i) {
        truncated.add(plan.events()[i]);
      }
      plan = std::move(truncated);
    }
    cfg.faults = std::move(plan);
  }

  if (scenario.solver) {
    // Solver-focused mode: force a solver-driven policy onto the analytic
    // backend (alternating the two solver-driven kinds across racks) so the
    // warm/cold/batched variants exercise solve_analytic_n every epoch.
    // The override consumes no RNG draws, so the rest of the derivation
    // stays identical to the non-solver scenario with the same coordinates.
    cfg.controller.policy = rack_index % 2 == 0 ? PolicyKind::kGreenHetero
                                                : PolicyKind::kGreenHeteroA;
    cfg.controller.solver_backend = SolverBackend::kAnalyticN;
    cfg.controller.solver_warm_start = warm_start;
  }

  const Watts capacity{rack_rng.uniform(600.0, 3000.0)};
  const SolarModel solar_model = rack_rng.bernoulli(0.5)
                                     ? high_solar_model(capacity)
                                     : low_solar_model(capacity);
  PowerTrace solar = generate_solar_trace(
      solar_model, 2,
      static_cast<std::uint64_t>(rack_rng.uniform_int(0, 1 << 30)));

  GridSpec grid;
  grid.budget = Watts{500.0};  // overwritten by the fleet each epoch
  return RackSimulator{std::move(rack),
                       make_standard_plant(std::move(solar), grid),
                       std::move(cfg)};
}

struct FleetParams {
  Watts total_grid_budget{0.0};
  GridShareMode mode = GridShareMode::kStatic;
  bool pretrain = false;
};

FleetParams derive_fleet_params(const FuzzScenario& scenario) {
  Rng fleet_rng = Rng(scenario.seed)
                      .fork(static_cast<std::uint64_t>(scenario.run_index))
                      .fork(2000);
  FleetParams params;
  params.total_grid_budget = Watts{fleet_rng.uniform(200.0, 2500.0)};
  params.mode = fleet_rng.bernoulli(0.5) ? GridShareMode::kDemandProportional
                                         : GridShareMode::kStatic;
  params.pretrain = fleet_rng.bernoulli(0.7);
  return params;
}

struct ExecutionArtifacts {
  FleetReport report;
  std::string trace;
  /// Per-rack ledger conservation error (Wh) after the run.
  std::vector<double> conservation_error;
  /// Per-rack run-level EPU straight from the simulator.
  std::vector<double> overall_epu;
};

ExecutionArtifacts execute(const FuzzScenario& scenario, std::size_t threads,
                           bool warm_start = true, bool batch_solve = false,
                           std::size_t shards = 1) {
  const FleetParams params = derive_fleet_params(scenario);
  std::vector<RackSimulator> racks;
  for (int r = 0; r < scenario.racks; ++r) {
    racks.push_back(make_rack_sim(scenario, r, warm_start));
  }
  FleetConfig cfg;
  cfg.total_grid_budget = params.total_grid_budget;
  cfg.mode = params.mode;
  cfg.threads = threads;
  cfg.shards = shards;
  cfg.batch_solve = batch_solve;
  cfg.check = true;
  Fleet fleet{std::move(racks), cfg};
  if (params.pretrain) fleet.pretrain();

  ExecutionArtifacts artifacts;
  artifacts.report = fleet.run(Minutes{scenario.epochs * kEpochMinutes});
  std::ostringstream trace;
  fleet.write_trace_jsonl(trace);
  artifacts.trace = trace.str();
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    artifacts.conservation_error.push_back(
        fleet.rack(i).ledger().conservation_error());
    artifacts.overall_epu.push_back(fleet.rack(i).overall_epu());
  }
  return artifacts;
}

#define GH_FUZZ_EXPECT_EQ(a, b, what)                                    \
  do {                                                                   \
    if (!((a) == (b))) {                                                 \
      std::ostringstream msg;                                            \
      msg << "sequential/parallel divergence: " << what << " (" << (a)   \
          << " vs " << (b) << ")";                                       \
      return msg.str();                                                  \
    }                                                                    \
  } while (false)

/// Byte-for-byte comparison of the sequential and parallel executions;
/// returns a description of the first divergence, or nullopt.
std::optional<std::string> compare_executions(const ExecutionArtifacts& seq,
                                              const ExecutionArtifacts& par) {
  const FleetReport& a = seq.report;
  const FleetReport& b = par.report;
  GH_FUZZ_EXPECT_EQ(a.total_work, b.total_work, "fleet total_work");
  GH_FUZZ_EXPECT_EQ(a.grid_energy.value(), b.grid_energy.value(),
                    "fleet grid_energy");
  GH_FUZZ_EXPECT_EQ(a.grid_cost, b.grid_cost, "fleet grid_cost");
  GH_FUZZ_EXPECT_EQ(a.peak_grid_allocation.value(),
                    b.peak_grid_allocation.value(),
                    "fleet peak_grid_allocation");
  GH_FUZZ_EXPECT_EQ(a.racks.size(), b.racks.size(), "rack count");
  for (std::size_t i = 0; i < a.racks.size(); ++i) {
    const RunReport& ra = a.racks[i];
    const RunReport& rb = b.racks[i];
    GH_FUZZ_EXPECT_EQ(ra.total_work, rb.total_work,
                      "rack " << i << " total_work");
    GH_FUZZ_EXPECT_EQ(ra.overall_epu, rb.overall_epu,
                      "rack " << i << " overall_epu");
    GH_FUZZ_EXPECT_EQ(ra.battery_cycles, rb.battery_cycles,
                      "rack " << i << " battery_cycles");
    GH_FUZZ_EXPECT_EQ(ra.grid_cost, rb.grid_cost, "rack " << i << " grid_cost");
    GH_FUZZ_EXPECT_EQ(ra.grid_energy.value(), rb.grid_energy.value(),
                      "rack " << i << " grid_energy");
    GH_FUZZ_EXPECT_EQ(ra.epochs.size(), rb.epochs.size(),
                      "rack " << i << " epoch count");
    for (std::size_t e = 0; e < ra.epochs.size(); ++e) {
      const EpochRecord& ea = ra.epochs[e];
      const EpochRecord& eb = rb.epochs[e];
      GH_FUZZ_EXPECT_EQ(ea.start.value(), eb.start.value(),
                        "rack " << i << " epoch " << e << " start");
      GH_FUZZ_EXPECT_EQ(ea.training, eb.training,
                        "rack " << i << " epoch " << e << " training");
      GH_FUZZ_EXPECT_EQ(static_cast<int>(ea.source_case),
                        static_cast<int>(eb.source_case),
                        "rack " << i << " epoch " << e << " source_case");
      GH_FUZZ_EXPECT_EQ(ea.budget.value(), eb.budget.value(),
                        "rack " << i << " epoch " << e << " budget");
      GH_FUZZ_EXPECT_EQ(ea.ratios == eb.ratios, true,
                        "rack " << i << " epoch " << e << " ratios");
      GH_FUZZ_EXPECT_EQ(ea.throughput, eb.throughput,
                        "rack " << i << " epoch " << e << " throughput");
      GH_FUZZ_EXPECT_EQ(ea.epu, eb.epu,
                        "rack " << i << " epoch " << e << " epu");
      GH_FUZZ_EXPECT_EQ(ea.battery_soc, eb.battery_soc,
                        "rack " << i << " epoch " << e << " battery_soc");
      GH_FUZZ_EXPECT_EQ(ea.grid_power.value(), eb.grid_power.value(),
                        "rack " << i << " epoch " << e << " grid_power");
      GH_FUZZ_EXPECT_EQ(ea.shortfall.value(), eb.shortfall.value(),
                        "rack " << i << " epoch " << e << " shortfall");
    }
  }
  GH_FUZZ_EXPECT_EQ(seq.trace == par.trace, true, "merged JSONL trace");
  return std::nullopt;
}

#undef GH_FUZZ_EXPECT_EQ

/// Post-run audit of the sequential execution: ledger conservation, EPU
/// bounds and every recorded PAR vector (after the optional test mutation).
std::optional<std::string> audit(const ExecutionArtifacts& artifacts,
                                 const AllocationMutation& mutation) {
  for (std::size_t i = 0; i < artifacts.report.racks.size(); ++i) {
    const RunReport& rack = artifacts.report.racks[i];
    const double conservation = artifacts.conservation_error[i];
    if (!(conservation <= 1e-5)) {
      std::ostringstream msg;
      msg << "rack " << i << " energy-ledger conservation error "
          << conservation << " Wh exceeds 1e-5";
      return msg.str();
    }
    const double epu = artifacts.overall_epu[i];
    if (!(epu >= 0.0 && epu <= 1.0)) {
      std::ostringstream msg;
      msg << "rack " << i << " run EPU " << epu << " outside [0, 1]";
      return msg.str();
    }
    for (std::size_t e = 0; e < rack.epochs.size(); ++e) {
      const EpochRecord& record = rack.epochs[e];
      if (!(record.epu >= 0.0 && record.epu <= 1.0 + 1e-9)) {
        std::ostringstream msg;
        msg << "rack " << i << " epoch " << e << " EPU " << record.epu
            << " outside [0, 1]";
        return msg.str();
      }
      std::vector<double> ratios = record.ratios;
      if (mutation) mutation(ratios);
      try {
        InvariantChecker::check_ratios(ratios, record.start.value(),
                                       static_cast<long>(e));
      } catch (const InvariantViolation& violation) {
        std::ostringstream msg;
        msg << "rack " << i << ": " << violation.what();
        return msg.str();
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::string FuzzScenario::command_line() const {
  std::ostringstream out;
  out << "greenhetero fuzz --seed " << seed << " --runs 1 --run " << run_index
      << " --racks " << racks << " --epochs " << epochs;
  if (shards > 1) out << " --shards " << shards;
  if (max_faults >= 0) out << " --max-faults " << max_faults;
  if (solver) out << " --solver on";
  return out.str();
}

std::optional<std::string> run_scenario(const FuzzScenario& scenario,
                                        const AllocationMutation& mutation) {
  ExecutionArtifacts sequential;
  ExecutionArtifacts parallel;
  try {
    // The reference is always the historical flat path; the parallel
    // execution layers the derived shard hierarchy on top, so one compare
    // covers both the threads and the shards byte-identity contract.
    sequential = execute(scenario, 1);
    parallel = execute(scenario, 4, true, false,
                       static_cast<std::size_t>(std::max(1, scenario.shards)));
  } catch (const InvariantViolation& violation) {
    return std::string("invariant violation: ") + violation.what();
  } catch (const std::exception& e) {
    return std::string("run aborted: ") + e.what();
  }

  if (auto divergence = compare_executions(sequential, parallel)) {
    return divergence;
  }
  if (auto complaint = audit(sequential, mutation)) {
    return complaint;
  }

  if (scenario.solver) {
    // Solver mode: the warm sequential run above is the reference; cold
    // (warm start off) and batched executions at 1 and 4 threads must all
    // reproduce it byte for byte — that is the warm-start and presolve
    // contract of the analytic backend, checked in vivo.
    struct SolverVariant {
      const char* name;
      std::size_t threads;
      bool warm_start;
      bool batch_solve;
    };
    constexpr SolverVariant kVariants[] = {
        {"cold solve, 1 thread", 1, false, false},
        {"cold solve, 4 threads", 4, false, false},
        {"batched solve, 1 thread", 1, true, true},
        {"batched solve, 4 threads", 4, true, true},
    };
    for (const SolverVariant& variant : kVariants) {
      ExecutionArtifacts other;
      try {
        other = execute(scenario, variant.threads, variant.warm_start,
                        variant.batch_solve);
      } catch (const std::exception& e) {
        return std::string(variant.name) + " aborted: " + e.what();
      }
      if (auto divergence = compare_executions(sequential, other)) {
        return std::string(variant.name) + " vs warm reference: " +
               *divergence;
      }
    }
  }

  // Differential-oracle spot check on the run's own side instances; solver
  // mode samples more instances at a larger group count, exercising the
  // analytic backend's active-set sweep (oracle check (f)) harder.
  OracleConfig oracle_config;
  int oracle_runs = 2;
  if (scenario.solver) {
    oracle_config.max_groups = 4;
    oracle_runs = 8;
  }
  const OracleReport oracle = run_oracle(
      scenario.seed * 0x9E3779B97F4A7C15ULL +
          static_cast<std::uint64_t>(scenario.run_index),
      oracle_runs, oracle_config);
  if (!oracle.ok()) {
    return "oracle disagreement: " + oracle.disagreements.front().describe();
  }
  return std::nullopt;
}

namespace {

/// Greedy shrink: for each dimension in turn, ascending linear search for
/// the smallest value that still fails (ascending keeps minimality exact;
/// every dimension is small enough for it to fit the attempt budget).
FuzzFailure shrink(const FuzzFailure& original,
                   const AllocationMutation& mutation, std::ostream* log) {
  FuzzFailure best = original;
  int budget = kShrinkBudget;

  const auto try_scenario =
      [&](const FuzzScenario& candidate) -> std::optional<std::string> {
    if (budget <= 0) return std::nullopt;
    --budget;
    return run_scenario(candidate, mutation);
  };

  const auto shrink_dim = [&](auto&& get, auto&& set, int floor, int current) {
    for (int value = floor; value < current && budget > 0; ++value) {
      FuzzScenario candidate = best.scenario;
      set(candidate, value);
      if (auto failure = try_scenario(candidate)) {
        best.scenario = candidate;
        best.what = *failure;
        if (log) {
          *log << "fuzz: shrank to " << candidate.command_line() << "\n";
        }
        return;
      }
    }
    (void)get;
  };

  shrink_dim([](const FuzzScenario& s) { return s.epochs; },
             [](FuzzScenario& s, int v) { s.epochs = v; }, 1,
             best.scenario.epochs);
  shrink_dim([](const FuzzScenario& s) { return s.racks; },
             [](FuzzScenario& s, int v) { s.racks = v; }, 1,
             best.scenario.racks);
  const int fault_ceiling =
      best.scenario.max_faults >= 0 ? best.scenario.max_faults
                                    : kFaultShrinkCap;
  shrink_dim([](const FuzzScenario& s) { return s.max_faults; },
             [](FuzzScenario& s, int v) { s.max_faults = v; }, 0,
             fault_ceiling);
  return best;
}

}  // namespace

FuzzReport run_fuzzer(const FuzzOptions& options) {
  FuzzReport report;
  for (int run = 0; run < options.runs; ++run) {
    const int run_index = options.only_run >= 0 ? options.only_run : run;

    FuzzScenario scenario;
    scenario.seed = options.seed;
    scenario.run_index = run_index;
    Rng dims = Rng(options.seed)
                   .fork(static_cast<std::uint64_t>(run_index))
                   .fork(3000);
    scenario.racks = dims.uniform_int(1, kMaxRacks);
    scenario.epochs = dims.uniform_int(3, kMaxEpochs);
    // Drawn after racks/epochs so pre-existing seeds derive the same
    // geometry they always did.
    scenario.shards = dims.uniform_int(1, 3);
    if (options.racks >= 0) scenario.racks = options.racks;
    if (options.epochs >= 0) scenario.epochs = options.epochs;
    if (options.shards >= 1) scenario.shards = options.shards;
    if (options.max_faults >= 0) scenario.max_faults = options.max_faults;
    scenario.solver = options.solver;

    if (options.log) {
      *options.log << "fuzz: run " << run_index << " (racks="
                   << scenario.racks << ", epochs=" << scenario.epochs
                   << ", shards=" << scenario.shards
                   << (scenario.solver ? ", solver mode" : "") << ")\n";
    }
    ++report.runs_executed;
    const std::optional<std::string> failure =
        run_scenario(scenario, options.allocation_mutation);
    if (!failure) continue;

    ++report.scenarios_failed;
    report.first_failure = FuzzFailure{scenario, *failure};
    if (options.log) {
      *options.log << "fuzz: FAILURE in run " << run_index << ": " << *failure
                   << "\nfuzz: shrinking...\n";
    }
    report.shrunk =
        shrink(*report.first_failure, options.allocation_mutation,
               options.log);
    if (options.log) {
      *options.log << "fuzz: minimal repro: "
                   << report.shrunk->scenario.command_line() << "\n"
                   << "fuzz: failure: " << report.shrunk->what << "\n";
    }
    break;  // the shrunk repro matters more than counting repeat failures
  }
  return report;
}

}  // namespace greenhetero::check
