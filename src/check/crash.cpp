#include "check/crash.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define GH_CRASH_FUZZER_POSIX 1
#endif

namespace greenhetero::check {

namespace {

#ifdef GH_CRASH_FUZZER_POSIX

/// One fully-derived crash scenario (all from (seed, run index)).
struct CrashScenario {
  int racks = 2;
  int hours = 48;
  int threads = 1;
  bool proportional = true;
  int kills = 1;
};

CrashScenario derive_scenario(std::uint64_t seed, int run_index,
                              int max_kills) {
  Rng rng = Rng{seed}.fork(static_cast<std::uint64_t>(run_index) + 1);
  CrashScenario s;
  s.racks = rng.uniform_int(2, 4);
  s.hours = rng.uniform_int(48, 120);
  s.threads = rng.bernoulli(0.5) ? 4 : 1;
  s.proportional = rng.bernoulli(0.75);
  s.kills = rng.uniform_int(1, std::max(1, max_kills));
  return s;
}

std::vector<std::string> fleet_argv(const CrashFuzzOptions& options,
                                    const CrashScenario& s,
                                    const std::filesystem::path& dir,
                                    bool resume) {
  std::vector<std::string> argv{
      options.binary,
      "fleet",
      "--racks", std::to_string(s.racks),
      "--hours", std::to_string(s.hours),
      "--threads", std::to_string(s.threads),
      "--mode", s.proportional ? "proportional" : "static",
      "--stream", "on",
      "--trace-out", (dir / "trace.jsonl").string(),
      "--rollup-out", (dir / "rollup.jsonl").string(),
      "--rollup-window", "60",
      "--metrics-out", (dir / "metrics.prom").string(),
      "--checkpoint-dir", (dir / "ckpt").string(),
      "--checkpoint-every", "1",
  };
  if (resume) {
    argv.push_back("--resume");
    argv.push_back((dir / "ckpt").string());
  }
  return argv;
}

/// fork + execv with stdout/stderr appended to `log_path`.  Returns the
/// child pid; throws when the fork itself fails (exec failures surface as
/// exit code 127 through waitpid).
pid_t spawn(const std::vector<std::string>& argv,
            const std::filesystem::path& log_path) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("crash fuzzer: fork failed");
  }
  if (pid == 0) {
    const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                          0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  return pid;
}

/// Wait for `pid`; returns the exit code, or -signal when it died on one.
int wait_child(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) {
      throw std::runtime_error("crash fuzzer: waitpid failed");
    }
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("crash fuzzer: cannot read " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Drop the wall-clock-dependent series (latency histograms and the sink's
/// backpressure gauges) — everything else must match exactly.
std::string filter_metrics(const std::string& text) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("_ns") != std::string::npos) continue;
    if (line.find("gh_trace_stalls") != std::string::npos) continue;
    if (line.find("gh_trace_queue_depth") != std::string::npos) continue;
    if (line.find("gh_trace_queue_residency") != std::string::npos) continue;
    if (line.find("gh_rack_epochs_per_sec") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

/// Compare one output file between the reference and crash directories;
/// returns a failure description or empty when identical.
std::string compare_file(const std::filesystem::path& ref_dir,
                         const std::filesystem::path& crash_dir,
                         const std::string& name, bool metrics) {
  std::string ref = read_file(ref_dir / name);
  std::string got = read_file(crash_dir / name);
  if (metrics) {
    ref = filter_metrics(ref);
    got = filter_metrics(got);
  }
  if (ref == got) return {};
  std::size_t at = 0;
  while (at < ref.size() && at < got.size() && ref[at] == got[at]) ++at;
  return name + " diverges at byte " + std::to_string(at) + " (" +
         std::to_string(ref.size()) + " vs " + std::to_string(got.size()) +
         " bytes)";
}

#endif  // GH_CRASH_FUZZER_POSIX

}  // namespace

#ifdef GH_CRASH_FUZZER_POSIX

CrashFuzzReport run_crash_fuzzer(const CrashFuzzOptions& options) {
  if (options.binary.empty() ||
      !std::filesystem::exists(options.binary)) {
    throw std::runtime_error("crash fuzzer: binary not found: " +
                             options.binary);
  }
  std::filesystem::create_directories(options.work_dir);

  CrashFuzzReport report;
  for (int run = 0; run < options.runs; ++run) {
    const CrashScenario scenario =
        derive_scenario(options.seed, run, options.max_kills);
    Rng kill_rng =
        Rng{options.seed}.fork(static_cast<std::uint64_t>(run) + 1000);
    const std::filesystem::path run_dir =
        options.work_dir / ("run-" + std::to_string(run));
    const std::filesystem::path ref_dir = run_dir / "ref";
    const std::filesystem::path crash_dir = run_dir / "crash";
    std::filesystem::remove_all(run_dir);
    std::filesystem::create_directories(ref_dir);
    std::filesystem::create_directories(crash_dir);
    if (options.log) {
      *options.log << "crash run " << run << ": " << scenario.racks
                   << " racks, " << scenario.hours << " h, "
                   << scenario.threads << " thread(s), "
                   << (scenario.proportional ? "proportional" : "static")
                   << " shares, up to " << scenario.kills << " kill(s)\n"
                   << std::flush;
    }

    ++report.runs_executed;
    const auto fail = [&](const std::string& what) {
      ++report.runs_failed;
      report.failures.push_back("run " + std::to_string(run) + ": " + what);
      if (options.log) {
        *options.log << "crash run " << run << ": FAILED: " << what << "\n"
                     << std::flush;
      }
    };

    // Reference: uninterrupted, same flags (checkpointing on) so the only
    // difference the crash side adds is the kills and --resume.
    {
      const pid_t pid = spawn(fleet_argv(options, scenario, ref_dir, false),
                              ref_dir / "child.log");
      const int code = wait_child(pid);
      if (code != 0) {
        fail("reference run exited with " + std::to_string(code));
        continue;
      }
    }

    // Crash side: kill, resume, repeat; then one final run to completion.
    bool harness_ok = true;
    int kills_left = scenario.kills;
    bool first = true;
    while (true) {
      const pid_t pid =
          spawn(fleet_argv(options, scenario, crash_dir, !first),
                crash_dir / "child.log");
      if (!first) ++report.resumes;
      first = false;
      if (kills_left > 0) {
        --kills_left;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kill_rng.uniform_int(25, 250)));
        ::kill(pid, SIGKILL);
        const int code = wait_child(pid);
        if (code == -SIGKILL) {
          ++report.kills_delivered;
          continue;  // landed mid-run; resume next iteration
        }
        if (code == 0) continue;  // finished before the kill; resume anyway
        fail("crashed child exited with " + std::to_string(code));
        harness_ok = false;
        break;
      }
      const int code = wait_child(pid);
      if (code != 0) {
        fail("resumed run exited with " + std::to_string(code));
        harness_ok = false;
      }
      break;
    }
    if (!harness_ok) continue;

    std::string what = compare_file(ref_dir, crash_dir, "trace.jsonl", false);
    if (what.empty()) {
      what = compare_file(ref_dir, crash_dir, "rollup.jsonl", false);
    }
    if (what.empty()) {
      what = compare_file(ref_dir, crash_dir, "metrics.prom", true);
    }
    if (!what.empty()) {
      fail(what);
      continue;
    }
    if (options.log) {
      *options.log << "crash run " << run << ": ok (" << report.kills_delivered
                   << " kill(s) so far)\n"
                   << std::flush;
    }
    std::filesystem::remove_all(run_dir);  // keep failures, drop clean runs
  }
  return report;
}

#else  // !GH_CRASH_FUZZER_POSIX

CrashFuzzReport run_crash_fuzzer(const CrashFuzzOptions& options) {
  CrashFuzzReport report;
  if (options.log) {
    *options.log << "crash fuzzer: unsupported on this platform (needs "
                    "fork/SIGKILL)\n";
  }
  return report;
}

#endif

}  // namespace greenhetero::check
