// Runtime invariant checker: a registry of machine-checked physical and
// algorithmic invariants installed as an optional observer on the simulator
// and the fleet coordinator.
//
// The properties asserted here are re-statements of guarantees the engine is
// designed around — energy conservation at every node, the battery's DoD
// floor and single-charging-source rule (Section IV-B.1), PAR vectors on the
// unit simplex (Section IV-B.3), EPU in [0, 1] (Equation 1) and the loss
// ledger's exact decomposition — evaluated on live state every substep and
// epoch instead of post hoc in individual tests.  A failed check raises a
// structured InvariantViolation carrying the invariant's name, the epoch and
// substep indices, the simulation time and the offending values.
//
// The checker is pull-only: it reads simulator state and never emits
// telemetry or mutates anything, so enabling it cannot change a run's
// behaviour, and a disabled checker (the default) costs one null-pointer
// test per substep — golden traces stay byte-identical either way.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "checkpoint/serializer.h"
#include "power/energy_ledger.h"
#include "power/power_bus.h"
#include "server/rack.h"
#include "sim/run_report.h"
#include "telemetry/ledger.h"
#include "util/units.h"

namespace greenhetero::check {

/// A failed invariant.  what() renders the full context in one line; the
/// structured accessors let harnesses (the fuzzer's shrinker, tests) key on
/// the invariant name and location without parsing the message.
class InvariantViolation : public std::runtime_error {
 public:
  InvariantViolation(std::string name, std::string details,
                     double sim_minutes, long epoch_index, long substep_index);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& details() const { return details_; }
  [[nodiscard]] double sim_minutes() const { return sim_minutes_; }
  /// Index of the epoch being checked (0-based; -1 when outside an epoch).
  [[nodiscard]] long epoch_index() const { return epoch_index_; }
  /// Substep index within the epoch (-1 for epoch-level invariants).
  [[nodiscard]] long substep_index() const { return substep_index_; }

 private:
  std::string name_;
  std::string details_;
  double sim_minutes_ = 0.0;
  long epoch_index_ = -1;
  long substep_index_ = -1;
};

/// One registry entry: the stable invariant name (used in violations and in
/// docs) and what it asserts.
struct InvariantInfo {
  std::string_view name;
  std::string_view description;
};

/// The full invariant taxonomy, in evaluation order (substep checks first,
/// then epoch checks).
[[nodiscard]] std::span<const InvariantInfo> invariant_registry();

class InvariantChecker {
 public:
  /// Everything the simulator knows right after executing one substep.
  struct SubstepContext {
    const Rack* rack = nullptr;
    const RackPowerPlant* plant = nullptr;
    PowerFlows flows;
    /// Renewable production available this substep (pre-execution meter).
    Watts renewable_available{0.0};
    /// Unmet planned load after degradation.
    Watts shortfall{0.0};
    Minutes now{0.0};
  };

  /// Everything known at the end of one epoch.
  struct EpochContext {
    const EpochRecord* record = nullptr;
    const EnergyLedger* ledger = nullptr;
    /// Run-level EPU so far (EpuMeter::epu()).
    double run_epu = 0.0;
    /// DoD floor as a SoC fraction (1 - depth_of_discharge).
    double floor_soc = 0.0;
    /// The just-closed loss-ledger epoch; null when the ledger is disabled.
    const telemetry::EpochLossRecord* loss = nullptr;
  };

  /// Evaluate every substep-level invariant; throws InvariantViolation on
  /// the first failure.
  void check_substep(const SubstepContext& ctx);

  /// Evaluate every epoch-level invariant; throws InvariantViolation on the
  /// first failure and advances the epoch counter.
  void check_epoch(const EpochContext& ctx);

  /// PAR-vector invariant on its own (reused by the fuzzer to re-validate
  /// recorded — possibly mutated — ratio vectors outside a simulator).
  static void check_ratios(std::span<const double> ratios,
                           double sim_minutes = 0.0, long epoch_index = -1);

  /// Fleet-level invariant: every grid share finite and non-negative, and
  /// the shares must never over-commit the datacenter budget.
  static void check_grid_shares(std::span<const Watts> shares, Watts total,
                                double sim_minutes = 0.0,
                                long epoch_index = -1);

  /// Sharded-fleet invariant on the rebalancer's per-shard grants: every
  /// grant finite and non-negative, and the grants must conserve the fleet
  /// budget (their sum never exceeds it).
  static void check_shard_grants(std::span<const Watts> grants, Watts total,
                                 double sim_minutes = 0.0,
                                 long epoch_index = -1);

  [[nodiscard]] std::uint64_t checks_passed() const { return checks_; }
  [[nodiscard]] std::uint64_t substeps_checked() const { return substeps_; }
  [[nodiscard]] std::uint64_t epochs_checked() const { return epochs_; }

  /// Checkpoint the counters, so a resumed run's "invariants: N checks"
  /// report line matches the uninterrupted run's.
  void save_state(checkpoint::Writer& w) const {
    w.u64(checks_);
    w.u64(substeps_);
    w.u64(epochs_);
    w.i64(substep_in_epoch_);
  }
  void load_state(checkpoint::Reader& r) {
    checks_ = r.u64();
    substeps_ = r.u64();
    epochs_ = r.u64();
    substep_in_epoch_ = static_cast<long>(r.i64());
  }

 private:
  [[noreturn]] void fail(std::string_view name, std::string details,
                         double sim_minutes) const;

  std::uint64_t checks_ = 0;
  std::uint64_t substeps_ = 0;
  std::uint64_t epochs_ = 0;
  long substep_in_epoch_ = 0;
};

}  // namespace greenhetero::check
