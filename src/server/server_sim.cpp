#include "server/server_sim.h"

namespace greenhetero {

namespace {

DvfsLadder make_ladder(const ServerSpec& spec, const PerfCurve& curve) {
  return DvfsLadder{curve.idle_power(), curve.peak_power(), spec.dvfs_states};
}

}  // namespace

ServerSim::ServerSim(const ServerSpec& spec, PerfCurve curve)
    : spec_(spec), curve_(curve), ladder_(make_ladder(spec, curve)) {}

void ServerSim::set_curve(PerfCurve curve) {
  curve_ = curve;
  ladder_ = make_ladder(spec_, curve_);
  state_ = DvfsLadder::kOffState;
}

int ServerSim::enforce_budget(Watts budget) {
  state_ = ladder_.state_for_budget(budget);
  return state_;
}

void ServerSim::run_full_speed() { state_ = ladder_.operating_states(); }

void ServerSim::power_off() { state_ = DvfsLadder::kOffState; }

Watts ServerSim::draw() const { return ladder_.state_power(state_); }

double ServerSim::throughput() const {
  if (state_ == DvfsLadder::kOffState) return 0.0;
  return curve_.throughput_at(draw());
}

void ServerSim::accumulate(Minutes dt) {
  energy_ += draw() * dt;
  work_ += throughput() * dt.value() / 60.0;
}

}  // namespace greenhetero
