#include "server/server_sim.h"

#include <algorithm>

namespace greenhetero {

namespace {

DvfsLadder make_ladder(const ServerSpec& spec, const PerfCurve& curve) {
  return DvfsLadder{curve.idle_power(), curve.peak_power(), spec.dvfs_states};
}

}  // namespace

ServerSim::ServerSim(const ServerSpec& spec, PerfCurve curve)
    : spec_(spec), curve_(curve), ladder_(make_ladder(spec, curve)) {}

void ServerSim::set_curve(PerfCurve curve) {
  curve_ = curve;
  ladder_ = make_ladder(spec_, curve_);
  state_ = DvfsLadder::kOffState;
}

int ServerSim::enforce_budget(Watts budget) {
  if (!online_) {
    state_ = DvfsLadder::kOffState;
  } else if (stuck_) {
    state_ = *stuck_;
  } else {
    state_ = ladder_.state_for_budget(budget + actuation_offset_);
  }
  return state_;
}

void ServerSim::run_full_speed() {
  if (!online_) {
    state_ = DvfsLadder::kOffState;
  } else if (stuck_) {
    state_ = *stuck_;
  } else {
    state_ = ladder_.operating_states();
  }
}

void ServerSim::power_off() { state_ = DvfsLadder::kOffState; }

void ServerSim::set_online(bool online) {
  online_ = online;
  if (!online_) state_ = DvfsLadder::kOffState;
}

void ServerSim::set_stuck_state(std::optional<int> state) {
  if (state) {
    stuck_ = std::clamp(*state, 0, ladder_.operating_states());
    if (online_) state_ = *stuck_;
  } else {
    stuck_.reset();
  }
}

Watts ServerSim::draw() const { return ladder_.state_power(state_); }

double ServerSim::throughput() const {
  if (state_ == DvfsLadder::kOffState) return 0.0;
  return curve_.throughput_at(draw());
}

void ServerSim::accumulate(Minutes dt) {
  energy_ += draw() * dt;
  work_ += throughput() * dt.value() / 60.0;
}

}  // namespace greenhetero
