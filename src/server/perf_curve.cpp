#include "server/perf_curve.h"

#include <cmath>

namespace greenhetero {

PerfCurve::PerfCurve(PerfCurveParams params) : params_(params) {
  if (params_.idle_power.value() < 0.0 ||
      params_.peak_power.value() <= params_.idle_power.value()) {
    throw CurveError("perf curve: require 0 <= idle < peak power");
  }
  if (params_.peak_throughput <= 0.0) {
    throw CurveError("perf curve: peak throughput must be positive");
  }
  if (params_.floor_fraction < 0.0 || params_.floor_fraction >= 1.0) {
    throw CurveError("perf curve: floor fraction must be in [0, 1)");
  }
  if (params_.gamma <= 0.0 || params_.gamma > 1.5) {
    throw CurveError("perf curve: gamma must be in (0, 1.5]");
  }
}

double PerfCurve::throughput_at(Watts power) const {
  if (power.value() < params_.idle_power.value()) {
    return 0.0;
  }
  if (power.value() >= params_.peak_power.value()) {
    return params_.peak_throughput;
  }
  const double x = (power - params_.idle_power) /
                   (params_.peak_power - params_.idle_power);
  const double scale =
      params_.floor_fraction +
      (1.0 - params_.floor_fraction) * std::pow(x, params_.gamma);
  return params_.peak_throughput * scale;
}

}  // namespace greenhetero
