#include "server/server_spec.h"

#include <string>

namespace greenhetero {

namespace {

constexpr std::array<ServerSpec, kServerModelCount> kSpecs = {{
    {ServerModel::kXeonE5_2620, "Xeon E5-2620", 2.0, 2, 12, Watts{178.0},
     Watts{88.0}, false, 12},
    {ServerModel::kXeonE5_2650, "Xeon E5-2650", 2.0, 1, 8, Watts{112.0},
     Watts{66.0}, false, 12},
    {ServerModel::kXeonE5_2603, "Xeon E5-2603", 1.8, 1, 4, Watts{79.0},
     Watts{58.0}, false, 10},
    {ServerModel::kCoreI7_8700K, "Core i7-8700K", 3.7, 1, 6, Watts{88.0},
     Watts{39.0}, false, 16},
    {ServerModel::kCoreI5_4460, "Core i5-4460", 3.2, 1, 4, Watts{96.0},
     Watts{47.0}, false, 14},
    {ServerModel::kTitanXp, "Nvidia Titan Xp", 1.582, 1, 3840, Watts{411.0},
     Watts{149.0}, true, 20},
}};

}  // namespace

const ServerSpec& server_spec(ServerModel model) {
  for (const auto& spec : kSpecs) {
    if (spec.model == model) return spec;
  }
  throw std::invalid_argument("unknown server model");
}

std::span<const ServerSpec> all_server_specs() { return kSpecs; }

ServerModel server_model_by_name(std::string_view name) {
  for (const auto& spec : kSpecs) {
    if (spec.name == name) return spec.model;
  }
  throw std::invalid_argument("unknown server name: " + std::string(name));
}

}  // namespace greenhetero
