#include "server/dvfs.h"

#include <cmath>

namespace greenhetero {

DvfsLadder::DvfsLadder(Watts idle_power, Watts peak_power,
                       int operating_states)
    : idle_power_(idle_power),
      peak_power_(peak_power),
      operating_states_(operating_states) {
  if (operating_states < 2) {
    throw DvfsError("dvfs: need at least 2 operating states");
  }
  if (idle_power.value() < 0.0 || peak_power.value() <= idle_power.value()) {
    throw DvfsError("dvfs: require 0 <= idle < peak power");
  }
}

Watts DvfsLadder::state_power(int state) const {
  if (state < 0 || state > operating_states_) {
    throw DvfsError("dvfs: state out of range");
  }
  if (state == kOffState) return Watts{0.0};
  const double frac = static_cast<double>(state - 1) /
                      static_cast<double>(operating_states_ - 1);
  return idle_power_ + (peak_power_ - idle_power_) * frac;
}

int DvfsLadder::state_for_budget(Watts budget) const {
  if (budget.value() < idle_power_.value()) {
    return kOffState;
  }
  if (budget.value() >= peak_power_.value()) {
    return operating_states_;
  }
  // Linear scale of the budget position within [idle, peak] onto [1, N].
  const double frac = (budget - idle_power_) / (peak_power_ - idle_power_);
  const int state =
      1 + static_cast<int>(std::floor(frac *
                                      static_cast<double>(operating_states_ - 1)));
  return std::min(state, operating_states_);
}

Watts DvfsLadder::quantization_gap(Watts budget) const {
  const int state = state_for_budget(budget);
  if (state == kOffState) return Watts{0.0};
  return max(Watts{0.0}, budget - state_power(state));
}

double DvfsLadder::frequency_fraction(int state) const {
  if (state <= 1) return 0.0;
  return static_cast<double>(state - 1) /
         static_cast<double>(operating_states_ - 1);
}

}  // namespace greenhetero
