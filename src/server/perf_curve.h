// Ground-truth performance-power behaviour of one (server, workload) pair.
//
// This is the simulator-side physics the controller never sees directly: it
// only observes (power, throughput) samples through the Monitor and fits its
// own quadratic projections.  The curve is the saturating concave shape the
// paper's Section IV-B.3 assumes:
//
//   throughput(P) = 0                                     for P <  idle
//                 = peak * (floor + (1-floor) * x^gamma)  for idle <= P <= peak,
//                       with x = (P - idle) / (peak - idle)
//                 = peak_perf                              for P >  peak
//
// gamma in (0, 1] controls the concavity (memory-bound workloads saturate
// early, compute-bound ones scale almost linearly with power), floor is the
// relative throughput at the lowest operating frequency.
#pragma once

#include <stdexcept>

#include "util/units.h"

namespace greenhetero {

class CurveError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct PerfCurveParams {
  Watts idle_power{50.0};   ///< minimum operating draw for this workload
  Watts peak_power{150.0};  ///< draw at full tilt for this workload
  double peak_throughput = 1000.0;  ///< metric units/s at peak power
  double floor_fraction = 0.35;     ///< relative throughput at idle power
  double gamma = 0.8;               ///< concavity; <1 is diminishing returns
};

class PerfCurve {
 public:
  explicit PerfCurve(PerfCurveParams params);

  [[nodiscard]] const PerfCurveParams& params() const { return params_; }
  [[nodiscard]] Watts idle_power() const { return params_.idle_power; }
  [[nodiscard]] Watts peak_power() const { return params_.peak_power; }
  [[nodiscard]] double peak_throughput() const {
    return params_.peak_throughput;
  }

  /// Throughput produced when drawing `power` watts.
  [[nodiscard]] double throughput_at(Watts power) const;

  /// Energy efficiency at full tilt (throughput per watt) — what the
  /// GreenHetero-p policy ranks servers by.
  [[nodiscard]] double peak_efficiency() const {
    return params_.peak_throughput / params_.peak_power.value();
  }

 private:
  PerfCurveParams params_;
};

}  // namespace greenhetero
