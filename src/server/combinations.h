// Server combinations of the heterogeneity study (Table IV of the paper).
//
// Comb1-Comb5 run SPECjbb on CPU mixes; Comb6 pairs the Xeon E5-2620 with
// the Titan Xp GPU node and runs the four Rodinia kernels (Figure 14).
// Each configuration contributes 5 servers, matching the evaluation
// platform ("each configuration consists of 5 servers in racks").
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "server/rack.h"
#include "workload/workload_spec.h"

namespace greenhetero {

struct ServerCombination {
  std::string_view name;
  std::vector<ServerGroup> groups;
  std::vector<Workload> workloads;
};

/// All six Table IV combinations.
[[nodiscard]] std::span<const ServerCombination> table4_combinations();

/// Lookup by name ("Comb1".."Comb6"); throws std::invalid_argument.
[[nodiscard]] const ServerCombination& combination_by_name(
    std::string_view name);

/// The fixed rack of the Figure 8/11/12 runtime experiments:
/// 5 x Xeon E5-2620 + 5 x Core i5-4460 (Comb1's mix, "10 total servers").
[[nodiscard]] std::vector<ServerGroup> default_runtime_rack();

}  // namespace greenhetero
