// DVFS power-state ladder (the ordered state set S_N of Section IV-B.4).
//
// A server exposes one off/sleep state plus N operating frequency states
// whose wall powers are evenly spaced between idle (lowest frequency) and
// peak (highest frequency).  The Server Power Controller maps a power budget
// onto this ladder exactly as the paper describes: values within the power
// range scale linearly onto a position in S_N; budgets below idle power force
// the off state; budgets above peak clamp to the top state.
#pragma once

#include <stdexcept>
#include <vector>

#include "util/units.h"

namespace greenhetero {

class DvfsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class DvfsLadder {
 public:
  /// Off-state index; operating states are 1..operating_states().
  static constexpr int kOffState = 0;

  DvfsLadder(Watts idle_power, Watts peak_power, int operating_states);

  [[nodiscard]] int operating_states() const { return operating_states_; }
  [[nodiscard]] int state_count() const { return operating_states_ + 1; }
  [[nodiscard]] Watts idle_power() const { return idle_power_; }
  [[nodiscard]] Watts peak_power() const { return peak_power_; }

  /// Wall power drawn in `state` (0 for the off state).
  [[nodiscard]] Watts state_power(int state) const;

  /// Highest state whose draw fits within `budget`; kOffState when even the
  /// lowest operating state does not fit.  This is the SPC's enforcement map.
  [[nodiscard]] int state_for_budget(Watts budget) const;

  /// Fraction of the frequency range represented by `state`: 0 for off and
  /// for the lowest operating state, 1 for the top state.
  [[nodiscard]] double frequency_fraction(int state) const;

  /// Watts of `budget` lost to state quantization: the gap between the
  /// budget and the draw of the state enforcement would pick.  Zero when the
  /// budget lands exactly on a state, and zero below the idle floor — that
  /// whole budget is the idle-floor loss bucket's business, not
  /// quantization's.
  [[nodiscard]] Watts quantization_gap(Watts budget) const;

 private:
  Watts idle_power_;
  Watts peak_power_;
  int operating_states_;
};

}  // namespace greenhetero
