#include "server/combinations.h"

#include <stdexcept>
#include <string>

namespace greenhetero {

std::span<const ServerCombination> table4_combinations() {
  static const std::vector<ServerCombination> kCombinations = {
      {"Comb1",
       {{ServerModel::kXeonE5_2620, 5}, {ServerModel::kCoreI5_4460, 5}},
       {Workload::kSpecJbb}},
      {"Comb2",
       {{ServerModel::kXeonE5_2603, 5}, {ServerModel::kCoreI5_4460, 5}},
       {Workload::kSpecJbb}},
      {"Comb3",
       {{ServerModel::kXeonE5_2650, 5}, {ServerModel::kXeonE5_2620, 5}},
       {Workload::kSpecJbb}},
      {"Comb4",
       {{ServerModel::kCoreI7_8700K, 5}, {ServerModel::kCoreI5_4460, 5}},
       {Workload::kSpecJbb}},
      {"Comb5",
       {{ServerModel::kXeonE5_2620, 5},
        {ServerModel::kXeonE5_2603, 5},
        {ServerModel::kCoreI5_4460, 5}},
       {Workload::kSpecJbb}},
      {"Comb6",
       {{ServerModel::kXeonE5_2620, 5}, {ServerModel::kTitanXp, 5}},
       {Workload::kRodiniaStreamcluster, Workload::kSradV1,
        Workload::kParticlefilter, Workload::kCfd}},
  };
  return kCombinations;
}

const ServerCombination& combination_by_name(std::string_view name) {
  for (const auto& comb : table4_combinations()) {
    if (comb.name == name) return comb;
  }
  throw std::invalid_argument("unknown combination: " + std::string(name));
}

std::vector<ServerGroup> default_runtime_rack() {
  return {{ServerModel::kXeonE5_2620, 5}, {ServerModel::kCoreI5_4460, 5}};
}

}  // namespace greenhetero
