#include "server/power_cap.h"

#include <algorithm>
#include <cmath>

namespace greenhetero {

PowerCapController::PowerCapController(PowerCapConfig config)
    : config_(config) {
  if (config_.window.value() <= 0.0) {
    throw std::invalid_argument("power cap: window must be positive");
  }
  if (config_.hysteresis < 0.0 || config_.hysteresis >= 1.0) {
    throw std::invalid_argument("power cap: hysteresis must be in [0, 1)");
  }
}

int PowerCapController::update(ServerSim& server, Watts cap, Minutes dt) {
  if (cap.value() < 0.0) {
    throw std::invalid_argument("power cap: cap must be non-negative");
  }
  // Exponential moving average equivalent to the sliding window.
  const double blend =
      std::min(1.0, dt.value() / config_.window.value());
  if (!seeded_) {
    average_ = server.draw();
    seeded_ = true;
  } else {
    average_ = average_ * (1.0 - blend) + server.draw() * blend;
  }

  const DvfsLadder& ladder = server.ladder();
  int state = server.state();
  if (average_.value() > cap.value()) {
    // Over the cap: throttle one state down (to off if even the lowest
    // operating state exceeds the cap).
    state = std::max(DvfsLadder::kOffState, state - 1);
    if (state >= 1 &&
        ladder.state_power(1).value() > cap.value()) {
      state = DvfsLadder::kOffState;
    }
  } else if (average_.value() < cap.value() * (1.0 - config_.hysteresis)) {
    // Comfortably below: step up if the next state still fits the cap.
    const int next = state + 1;
    if (next <= ladder.operating_states() &&
        ladder.state_power(next).value() <= cap.value()) {
      state = next;
    }
  }
  server.enforce_budget(ladder.state_power(state) + Watts{1e-9});
  return server.state();
}

void PowerCapController::reset() {
  average_ = Watts{0.0};
  seeded_ = false;
}

}  // namespace greenhetero
