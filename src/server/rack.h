// A rack of heterogeneous servers running one workload.
//
// Racks group identical servers: the paper's allocator hands each server
// *type* a power-allocation ratio, and servers of the same type always share
// their group's power evenly (Section IV-B.3).  The rack is the unit the
// GreenHetero controller manages — in the paper's evaluation each
// configuration contributes 5 servers.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "server/server_sim.h"
#include "server/server_spec.h"
#include "workload/catalog.h"
#include "workload/workload_spec.h"

namespace greenhetero::checkpoint {
class Writer;
class Reader;
}  // namespace greenhetero::checkpoint

namespace greenhetero {

struct ServerGroup {
  ServerModel model;
  int count = 5;
};

class RackError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Rack {
 public:
  /// Build a rack from up to 3 server groups (the paper's per-PDU limit),
  /// all running `workload`.  Throws RackError for empty/oversized racks or
  /// workloads not runnable on a member (e.g. Web-search on the GPU node).
  Rack(std::vector<ServerGroup> groups, Workload workload,
       const WorkloadCatalog& catalog = default_catalog());

  /// Colocation form: each group runs its own workload (e.g. the Xeons host
  /// a batch job while the desktops serve an interactive one).  The
  /// controller's database keys are per (server config, workload), so the
  /// whole pipeline — training runs, fits, solver — works unchanged; only
  /// the summed "rack throughput" mixes metrics and should be read per
  /// group.  `workloads.size()` must equal `groups.size()`.
  Rack(std::vector<ServerGroup> groups, std::vector<Workload> workloads,
       const WorkloadCatalog& catalog = default_catalog());

  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  [[nodiscard]] const ServerGroup& group(std::size_t i) const;
  [[nodiscard]] int total_servers() const;
  /// The first group's workload (rack-wide workload in the paper's setup).
  [[nodiscard]] Workload workload() const { return workloads_.front(); }
  [[nodiscard]] Workload group_workload(std::size_t i) const;
  /// True when every group runs the same workload (the paper's setup).
  [[nodiscard]] bool uniform_workload() const;
  [[nodiscard]] const WorkloadCatalog& catalog() const { return *catalog_; }

  /// Switch every server to a new workload (rebuilds ground truth; servers
  /// restart asleep until the next enforcement).
  void set_workload(Workload workload);
  /// Switch one group's workload.
  void set_group_workload(std::size_t i, Workload workload);

  /// Ground truth visible to tests/oracles (the controller itself only sees
  /// monitor samples): per-group single-server curve.
  [[nodiscard]] const PerfCurve& group_curve(std::size_t i) const;

  /// Aggregate full-tilt demand of the whole rack.
  [[nodiscard]] Watts peak_demand() const;
  /// Aggregate minimum-operate demand (every server at its lowest state).
  [[nodiscard]] Watts idle_demand() const;

  /// Enforce a per-group total power budget (group i receives
  /// group_power[i], split evenly across its servers).  Size must equal
  /// group_count().
  void enforce_allocation(std::span<const Watts> group_power);

  /// Subset-activation enforcement: group i's power is split across its
  /// first active[i] servers, and the remaining members sleep.  active[i]
  /// must lie in [0, count].
  void enforce_allocation_subset(std::span<const Watts> group_power,
                                 std::span<const int> active);

  /// Mutable access to one group's first server (all members are identical
  /// and enforced together; the RAPL-mode simulator drives the group's
  /// state through its representative).
  [[nodiscard]] ServerSim& mutable_group_representative(std::size_t i);
  /// Force every server of group i into `state`.
  void set_group_state(std::size_t i, int state);

  /// Training-run behaviour: all servers at full speed.
  void run_full_speed();
  void power_off();

  /// Fault injection: crash (`online == false`) or recover every server of
  /// group i.  Recovered servers stay asleep until the next enforcement.
  void set_group_online(std::size_t i, bool online);
  [[nodiscard]] bool group_online(std::size_t i) const;
  /// Fault injection: latch group i's DVFS actuation at `state` (nullopt
  /// clears the fault).
  void set_group_stuck_state(std::size_t i, std::optional<int> state);
  /// Fault injection: shift group i's enforced budgets by `offset` watts
  /// per server.
  void set_group_actuation_offset(std::size_t i, Watts offset);

  [[nodiscard]] Watts total_draw() const;
  [[nodiscard]] double total_throughput() const;
  [[nodiscard]] Watts group_draw(std::size_t i) const;
  [[nodiscard]] double group_throughput(std::size_t i) const;
  /// One representative server of group i (all members are identical).
  [[nodiscard]] const ServerSim& group_representative(std::size_t i) const;

  /// Integrate the current operating point over `dt` on every server.
  void accumulate(Minutes dt);
  [[nodiscard]] WattHours total_energy() const;
  [[nodiscard]] double total_work() const;

  /// Checkpoint per-group workloads plus every server's operating state.
  /// Loading re-derives curves/ladders from the restored workloads (a
  /// workload-schedule switch may have moved a group off its configured
  /// workload) and then overwrites the server state the rebuild reset.
  void save_state(checkpoint::Writer& w) const;
  void load_state(checkpoint::Reader& r);

 private:
  [[nodiscard]] std::span<ServerSim> group_servers(std::size_t i);
  [[nodiscard]] std::span<const ServerSim> group_servers(std::size_t i) const;

  std::vector<ServerGroup> groups_;
  std::vector<Workload> workloads_;  ///< one per group
  const WorkloadCatalog* catalog_;
  std::vector<ServerSim> servers_;       // grouped contiguously
  std::vector<std::size_t> group_offsets_;
};

}  // namespace greenhetero
