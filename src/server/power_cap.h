// RAPL-style windowed power capping.
//
// The SPC's one-shot budget->state map (DvfsLadder::state_for_budget)
// assumes the enforcement mechanism is exact and instantaneous.  Real
// hardware capping — Intel RAPL, the mechanism a deployment of this system
// would use — is a feedback loop instead: the package tracks average power
// over a sliding window and steps frequency down when the average exceeds
// the cap, up when it sits safely below.  This controller emulates that
// behaviour on a ServerSim, with hysteresis so the state does not chatter
// between two levels whose powers straddle the cap.
#pragma once

#include <stdexcept>

#include "checkpoint/serializer.h"
#include "server/server_sim.h"
#include "util/units.h"

namespace greenhetero {

struct PowerCapConfig {
  /// Averaging window (RAPL's PL1 time window; seconds-scale).
  Minutes window{0.05};
  /// Step the state up only when the windowed average is below
  /// cap * (1 - hysteresis); prevents up/down chatter at the boundary.
  double hysteresis = 0.05;
};

class PowerCapController {
 public:
  explicit PowerCapController(PowerCapConfig config = {});

  [[nodiscard]] const PowerCapConfig& config() const { return config_; }
  [[nodiscard]] Watts windowed_average() const { return average_; }

  /// One control step of length `dt`: fold the server's current draw into
  /// the windowed average, then adjust its DVFS state against `cap`.
  /// Returns the state selected.
  int update(ServerSim& server, Watts cap, Minutes dt);

  void reset();

  void save_state(checkpoint::Writer& w) const {
    w.f64(average_.value());
    w.boolean(seeded_);
  }
  void load_state(checkpoint::Reader& r) {
    average_ = Watts{r.f64()};
    seeded_ = r.boolean();
  }

 private:
  PowerCapConfig config_;
  Watts average_{0.0};
  bool seeded_ = false;
};

}  // namespace greenhetero
