// Server platform descriptions (Table II of the paper).
//
// Six configurations are evaluated: five Intel CPU platforms spanning three
// microarchitecture generations plus an Nvidia Titan Xp GPU node.  The
// peak/idle powers here are the paper's measured wall powers and are the
// anchor points of every ground-truth performance curve in the simulator.
#pragma once

#include <array>
#include <span>
#include <stdexcept>
#include <string_view>

#include "util/units.h"

namespace greenhetero {

enum class ServerModel {
  kXeonE5_2620,  ///< 2.0 GHz, 2 sockets, 12 cores, 178 W / 88 W
  kXeonE5_2650,  ///< 2.0 GHz, 1 socket, 8 cores, 112 W / 66 W
  kXeonE5_2603,  ///< 1.8 GHz, 1 socket, 4 cores, 79 W / 58 W
  kCoreI7_8700K, ///< 3.7 GHz, 1 socket, 6 cores, 88 W / 39 W
  kCoreI5_4460,  ///< 3.2 GHz, 1 socket, 4 cores, 96 W / 47 W
  kTitanXp,      ///< 1582 MHz, 3840 CUDA cores, 411 W / 149 W
};

inline constexpr int kServerModelCount = 6;

struct ServerSpec {
  ServerModel model;
  std::string_view name;
  double frequency_ghz;
  int sockets;
  int cores;
  Watts peak_power;
  Watts idle_power;
  bool is_gpu;
  /// Number of operating DVFS states (frequency levels) between idle and
  /// peak; the power-state set S_N of Section IV-B.4 additionally contains
  /// the off/sleep state below them.
  int dvfs_states;

  /// Dynamic power range available to allocation decisions.
  [[nodiscard]] Watts dynamic_range() const { return peak_power - idle_power; }
};

/// Table II entry for a model.
[[nodiscard]] const ServerSpec& server_spec(ServerModel model);

/// All six Table II configurations.
[[nodiscard]] std::span<const ServerSpec> all_server_specs();

/// Lookup by the human-readable name used in benches ("Xeon E5-2620", ...).
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] ServerModel server_model_by_name(std::string_view name);

}  // namespace greenhetero
