// Simulated server: the unit the Enforcer's Server Power Controller acts on.
//
// A server holds the ground-truth PerfCurve of its current workload and a
// DVFS ladder spanning that workload's operating power range.  Enforcing a
// power budget picks the highest ladder state that fits (the paper's linear
// power-to-state map); the server then *draws* that state's power and
// produces the curve's throughput at that draw.  A budget below the lowest
// operating state puts the server into the sleep state (zero draw, zero
// throughput) — this is the waste mechanism behind the EPU results.
#pragma once

#include <optional>

#include "checkpoint/serializer.h"
#include "server/dvfs.h"
#include "server/perf_curve.h"
#include "server/server_spec.h"
#include "util/units.h"

namespace greenhetero {

class ServerSim {
 public:
  ServerSim(const ServerSpec& spec, PerfCurve curve);

  [[nodiscard]] const ServerSpec& spec() const { return spec_; }
  [[nodiscard]] const PerfCurve& curve() const { return curve_; }
  [[nodiscard]] const DvfsLadder& ladder() const { return ladder_; }

  /// Swap in a new workload's ground truth (rebuilds the ladder; the server
  /// restarts in the sleep state).
  void set_curve(PerfCurve curve);

  /// SPC enforcement: clamp to the best state within `budget`.
  /// Returns the chosen state.
  int enforce_budget(Watts budget);

  /// Training-run behaviour (ondemand governor with ample power): top state.
  void run_full_speed();

  void power_off();

  /// Fault injection: an offline (crashed) server draws nothing and ignores
  /// enforcement until it comes back; recovery leaves it asleep until the
  /// next enforcement.
  void set_online(bool online);
  [[nodiscard]] bool online() const { return online_; }

  /// Fault injection: DVFS actuation latched at `state` (clamped to the
  /// ladder) — enforcement and full-speed requests land there regardless of
  /// the commanded budget.  nullopt clears the fault.
  void set_stuck_state(std::optional<int> state);
  [[nodiscard]] std::optional<int> stuck_state() const { return stuck_; }

  /// Fault injection: actuation miscalibration — every enforced budget is
  /// shifted by `offset` watts before the ladder lookup, so the server
  /// draws more (positive) or less (negative) than commanded.
  void set_actuation_offset(Watts offset) { actuation_offset_ = offset; }
  [[nodiscard]] Watts actuation_offset() const { return actuation_offset_; }

  [[nodiscard]] int state() const { return state_; }
  /// Wall power currently drawn.
  [[nodiscard]] Watts draw() const;
  /// Throughput currently produced (metric units / s).
  [[nodiscard]] double throughput() const;

  /// Integrate the current operating point over `dt`.
  void accumulate(Minutes dt);

  [[nodiscard]] WattHours energy_used() const { return energy_; }
  /// Work = throughput integrated over time (metric units * minutes / 60,
  /// i.e. metric-unit-hours).
  [[nodiscard]] double work_done() const { return work_; }

  /// Checkpoint the operating state (spec/curve/ladder are rebuilt from the
  /// restored workload before this is loaded).
  void save_state(checkpoint::Writer& w) const {
    w.i64(state_);
    w.boolean(online_);
    w.boolean(stuck_.has_value());
    w.i64(stuck_.value_or(0));
    w.f64(actuation_offset_.value());
    w.f64(energy_.value());
    w.f64(work_);
  }
  void load_state(checkpoint::Reader& r) {
    state_ = static_cast<int>(r.i64());
    online_ = r.boolean();
    const bool has_stuck = r.boolean();
    const int stuck = static_cast<int>(r.i64());
    stuck_ = has_stuck ? std::optional<int>(stuck) : std::nullopt;
    actuation_offset_ = Watts{r.f64()};
    energy_ = WattHours{r.f64()};
    work_ = r.f64();
  }

 private:
  ServerSpec spec_;
  PerfCurve curve_;
  DvfsLadder ladder_;
  int state_ = DvfsLadder::kOffState;
  bool online_ = true;
  std::optional<int> stuck_;
  Watts actuation_offset_{0.0};
  WattHours energy_{0.0};
  double work_ = 0.0;
};

}  // namespace greenhetero
