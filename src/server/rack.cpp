#include "server/rack.h"

#include "checkpoint/serializer.h"

namespace greenhetero {

Rack::Rack(std::vector<ServerGroup> groups, Workload workload,
           const WorkloadCatalog& catalog)
    : Rack(std::vector<ServerGroup>(groups),
           std::vector<Workload>(groups.size(), workload), catalog) {}

Rack::Rack(std::vector<ServerGroup> groups, std::vector<Workload> workloads,
           const WorkloadCatalog& catalog)
    : groups_(std::move(groups)),
      workloads_(std::move(workloads)),
      catalog_(&catalog) {
  if (groups_.empty() || groups_.size() > 3) {
    throw RackError("rack: need 1..3 server groups (paper's per-PDU limit)");
  }
  if (workloads_.size() != groups_.size()) {
    throw RackError("rack: need one workload per group");
  }
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].count <= 0) {
      throw RackError("rack: group count must be positive");
    }
    if (!catalog_->runnable(groups_[i].model, workloads_[i])) {
      throw RackError("rack: workload not runnable on a group member");
    }
  }
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    group_offsets_.push_back(servers_.size());
    const ServerSpec& spec = server_spec(groups_[i].model);
    const PerfCurve curve = catalog_->curve(groups_[i].model, workloads_[i]);
    for (int s = 0; s < groups_[i].count; ++s) {
      servers_.emplace_back(spec, curve);
    }
  }
  group_offsets_.push_back(servers_.size());
}

const ServerGroup& Rack::group(std::size_t i) const {
  if (i >= groups_.size()) {
    throw RackError("rack: group index out of range");
  }
  return groups_[i];
}

int Rack::total_servers() const {
  int total = 0;
  for (const auto& g : groups_) total += g.count;
  return total;
}

Workload Rack::group_workload(std::size_t i) const {
  if (i >= workloads_.size()) {
    throw RackError("rack: group index out of range");
  }
  return workloads_[i];
}

bool Rack::uniform_workload() const {
  for (Workload w : workloads_) {
    if (w != workloads_.front()) return false;
  }
  return true;
}

void Rack::set_workload(Workload workload) {
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    set_group_workload(i, workload);
  }
}

void Rack::set_group_workload(std::size_t i, Workload workload) {
  if (i >= groups_.size()) {
    throw RackError("rack: group index out of range");
  }
  if (!catalog_->runnable(groups_[i].model, workload)) {
    throw RackError("rack: workload not runnable on a group member");
  }
  workloads_[i] = workload;
  const PerfCurve curve = catalog_->curve(groups_[i].model, workload);
  for (ServerSim& server : group_servers(i)) {
    server.set_curve(curve);
  }
}

const PerfCurve& Rack::group_curve(std::size_t i) const {
  return group_representative(i).curve();
}

Watts Rack::peak_demand() const {
  Watts total{0.0};
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    total += group_curve(i).peak_power() *
             static_cast<double>(groups_[i].count);
  }
  return total;
}

Watts Rack::idle_demand() const {
  Watts total{0.0};
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    total += group_curve(i).idle_power() *
             static_cast<double>(groups_[i].count);
  }
  return total;
}

void Rack::enforce_allocation(std::span<const Watts> group_power) {
  if (group_power.size() != groups_.size()) {
    throw RackError("rack: allocation size must equal group count");
  }
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    const Watts per_server =
        group_power[i] / static_cast<double>(groups_[i].count);
    for (ServerSim& server : group_servers(i)) {
      server.enforce_budget(per_server);
    }
  }
}

void Rack::enforce_allocation_subset(std::span<const Watts> group_power,
                                     std::span<const int> active) {
  if (group_power.size() != groups_.size() ||
      active.size() != groups_.size()) {
    throw RackError("rack: subset allocation sizes must match group count");
  }
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (active[i] < 0 || active[i] > groups_[i].count) {
      throw RackError("rack: active count out of range");
    }
    const auto servers = group_servers(i);
    if (active[i] == 0) {
      for (ServerSim& server : servers) server.power_off();
      continue;
    }
    const Watts per_server =
        group_power[i] / static_cast<double>(active[i]);
    for (std::size_t s = 0; s < servers.size(); ++s) {
      if (s < static_cast<std::size_t>(active[i])) {
        servers[s].enforce_budget(per_server);
      } else {
        servers[s].power_off();
      }
    }
  }
}

ServerSim& Rack::mutable_group_representative(std::size_t i) {
  return group_servers(i).front();
}

void Rack::set_group_state(std::size_t i, int state) {
  for (ServerSim& server : group_servers(i)) {
    const Watts budget = server.ladder().state_power(state);
    server.enforce_budget(budget + Watts{1e-9});
  }
}

void Rack::set_group_online(std::size_t i, bool online) {
  for (ServerSim& server : group_servers(i)) {
    server.set_online(online);
  }
}

bool Rack::group_online(std::size_t i) const {
  return group_representative(i).online();
}

void Rack::set_group_stuck_state(std::size_t i, std::optional<int> state) {
  for (ServerSim& server : group_servers(i)) {
    server.set_stuck_state(state);
  }
}

void Rack::set_group_actuation_offset(std::size_t i, Watts offset) {
  for (ServerSim& server : group_servers(i)) {
    server.set_actuation_offset(offset);
  }
}

void Rack::run_full_speed() {
  for (ServerSim& server : servers_) server.run_full_speed();
}

void Rack::power_off() {
  for (ServerSim& server : servers_) server.power_off();
}

Watts Rack::total_draw() const {
  Watts total{0.0};
  for (const ServerSim& server : servers_) total += server.draw();
  return total;
}

double Rack::total_throughput() const {
  double total = 0.0;
  for (const ServerSim& server : servers_) total += server.throughput();
  return total;
}

Watts Rack::group_draw(std::size_t i) const {
  Watts total{0.0};
  for (const ServerSim& server : group_servers(i)) total += server.draw();
  return total;
}

double Rack::group_throughput(std::size_t i) const {
  double total = 0.0;
  for (const ServerSim& server : group_servers(i)) {
    total += server.throughput();
  }
  return total;
}

const ServerSim& Rack::group_representative(std::size_t i) const {
  return group_servers(i).front();
}

void Rack::accumulate(Minutes dt) {
  for (ServerSim& server : servers_) server.accumulate(dt);
}

WattHours Rack::total_energy() const {
  WattHours total{0.0};
  for (const ServerSim& server : servers_) total += server.energy_used();
  return total;
}

double Rack::total_work() const {
  double total = 0.0;
  for (const ServerSim& server : servers_) total += server.work_done();
  return total;
}

std::span<ServerSim> Rack::group_servers(std::size_t i) {
  if (i >= groups_.size()) {
    throw RackError("rack: group index out of range");
  }
  return {servers_.data() + group_offsets_[i],
          group_offsets_[i + 1] - group_offsets_[i]};
}

std::span<const ServerSim> Rack::group_servers(std::size_t i) const {
  if (i >= groups_.size()) {
    throw RackError("rack: group index out of range");
  }
  return {servers_.data() + group_offsets_[i],
          group_offsets_[i + 1] - group_offsets_[i]};
}

void Rack::save_state(checkpoint::Writer& w) const {
  w.seq(groups_.size());
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    w.i64(static_cast<std::int64_t>(workloads_[i]));
    const std::span<const ServerSim> servers = group_servers(i);
    w.seq(servers.size());
    for (const ServerSim& server : servers) server.save_state(w);
  }
}

void Rack::load_state(checkpoint::Reader& r) {
  if (r.seq() != groups_.size()) {
    throw checkpoint::CheckpointError("rack: group count mismatch");
  }
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    const auto workload = static_cast<Workload>(r.i64());
    if (workload != workloads_[i]) {
      set_group_workload(i, workload);
    }
    const std::span<ServerSim> servers = group_servers(i);
    if (r.seq() != servers.size()) {
      throw checkpoint::CheckpointError("rack: server count mismatch");
    }
    for (ServerSim& server : servers) server.load_state(r);
  }
}

}  // namespace greenhetero
