#include "trace/wind.h"

#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace greenhetero {

namespace {

/// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

/// Weibull quantile function.
double weibull_quantile(double u, double shape, double scale) {
  u = std::min(std::max(u, 1e-12), 1.0 - 1e-12);
  return scale * std::pow(-std::log(1.0 - u), 1.0 / shape);
}

}  // namespace

double wind_power_fraction(const WindModel& model, double speed_ms) {
  if (speed_ms < model.cut_in_ms || speed_ms >= model.cut_out_ms) {
    return 0.0;
  }
  if (speed_ms >= model.rated_ms) {
    return 1.0;
  }
  // Cubic growth between cut-in and rated.
  const double num = std::pow(speed_ms, 3.0) - std::pow(model.cut_in_ms, 3.0);
  const double den =
      std::pow(model.rated_ms, 3.0) - std::pow(model.cut_in_ms, 3.0);
  return num / den;
}

PowerTrace generate_wind_trace(const WindModel& model, int days,
                               std::uint64_t seed, Minutes interval) {
  if (days <= 0) {
    throw TraceError("wind: days must be positive");
  }
  if (interval.value() <= 0.0) {
    throw TraceError("wind: interval must be positive");
  }
  if (model.cut_in_ms >= model.rated_ms ||
      model.rated_ms >= model.cut_out_ms) {
    throw TraceError("wind: require cut-in < rated < cut-out speeds");
  }
  if (model.persistence < 0.0 || model.persistence >= 1.0) {
    throw TraceError("wind: persistence must be in [0, 1)");
  }
  Rng rng(seed);
  const auto samples_per_day =
      static_cast<std::size_t>(std::llround(24.0 * 60.0 / interval.value()));
  const std::size_t total = samples_per_day * static_cast<std::size_t>(days);

  std::vector<Watts> samples;
  samples.reserve(total);
  // AR(1) latent Gaussian; innovation variance keeps z ~ N(0, 1).
  const double innovation =
      std::sqrt(1.0 - model.persistence * model.persistence);
  double z = rng.gaussian(0.0, 1.0);
  for (std::size_t i = 0; i < total; ++i) {
    z = model.persistence * z + rng.gaussian(0.0, innovation);
    const double speed =
        weibull_quantile(phi(z), model.weibull_shape, model.weibull_scale);
    samples.push_back(model.rated_power * wind_power_fraction(model, speed));
  }
  return PowerTrace{interval, std::move(samples)};
}

PowerTrace combine_traces(const PowerTrace& a, const PowerTrace& b) {
  if (a.size() != b.size() ||
      std::fabs(a.interval().value() - b.interval().value()) > 1e-9) {
    throw TraceError("combine: traces must share size and interval");
  }
  std::vector<Watts> samples;
  samples.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    samples.push_back(a.sample(i) + b.sample(i));
  }
  return PowerTrace{a.interval(), std::move(samples)};
}

}  // namespace greenhetero
