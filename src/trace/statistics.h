// Power-trace statistics: the numbers an operator (and the trace-generation
// tests) use to characterise a renewable source or a demand pattern.
#pragma once

#include "trace/trace.h"

namespace greenhetero {

struct TraceStatistics {
  Watts mean{0.0};
  Watts peak{0.0};
  /// mean / peak — for a generation trace against its rated power this is
  /// the capacity factor.
  double load_factor = 0.0;
  /// Coefficient of variation (stddev / mean); 0 for a flat trace.
  double variability = 0.0;
  /// Mean absolute change between consecutive samples, in watts per sample.
  Watts mean_ramp{0.0};
  /// Largest single-step change.
  Watts max_ramp{0.0};
  /// Fraction of samples at (essentially) zero output.
  double zero_fraction = 0.0;
  /// Lag-1 autocorrelation of the sample series.
  double autocorrelation = 0.0;
};

/// Compute statistics over a whole trace (throws TraceError when empty).
[[nodiscard]] TraceStatistics analyze_trace(const PowerTrace& trace);

/// Fraction of `demand`'s samples that `supply` cannot cover — the paper's
/// "renewable power is insufficient" epochs.  Both traces must share their
/// sampling interval; comparison runs over the overlapping prefix.
[[nodiscard]] double insufficiency_fraction(const PowerTrace& supply,
                                            const PowerTrace& demand);

/// Mean production per hour-of-day (24 buckets) — the diurnal profile used
/// to eyeball generated traces against the NREL originals.
[[nodiscard]] std::vector<Watts> diurnal_profile(const PowerTrace& trace);

}  // namespace greenhetero
