#include "trace/trace.h"

#include <algorithm>
#include <cmath>

#include "util/csv.h"

namespace greenhetero {

PowerTrace::PowerTrace(Minutes interval, std::vector<Watts> samples)
    : interval_(interval), samples_(std::move(samples)) {
  if (interval.value() <= 0.0) {
    throw TraceError("trace: interval must be positive");
  }
}

Watts PowerTrace::sample(std::size_t index) const {
  if (index >= samples_.size()) {
    throw TraceError("trace: sample index out of range");
  }
  return samples_[index];
}

Watts PowerTrace::at(Minutes t) const {
  if (samples_.empty()) {
    throw TraceError("trace: empty");
  }
  const double idx = std::floor(t.value() / interval_.value());
  const auto clamped = static_cast<std::size_t>(
      std::clamp(idx, 0.0, static_cast<double>(samples_.size() - 1)));
  return samples_[clamped];
}

Watts PowerTrace::interpolate(Minutes t) const {
  if (samples_.empty()) {
    throw TraceError("trace: empty");
  }
  const double pos = t.value() / interval_.value();
  if (pos <= 0.0) return samples_.front();
  if (pos >= static_cast<double>(samples_.size() - 1)) return samples_.back();
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Watts PowerTrace::mean_power() const {
  if (samples_.empty()) {
    throw TraceError("trace: empty");
  }
  Watts total{0.0};
  for (Watts w : samples_) total += w;
  return total / static_cast<double>(samples_.size());
}

Watts PowerTrace::peak_power() const {
  if (samples_.empty()) {
    throw TraceError("trace: empty");
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

WattHours PowerTrace::total_energy() const {
  WattHours total{0.0};
  for (Watts w : samples_) total += w * interval_;
  return total;
}

PowerTrace PowerTrace::scaled(double factor) const {
  std::vector<Watts> scaled_samples;
  scaled_samples.reserve(samples_.size());
  for (Watts w : samples_) scaled_samples.push_back(w * factor);
  return PowerTrace{interval_, std::move(scaled_samples)};
}

PowerTrace PowerTrace::window(Minutes from, Minutes length) const {
  const auto first = static_cast<std::size_t>(
      std::clamp(std::floor(from.value() / interval_.value()), 0.0,
                 static_cast<double>(samples_.size())));
  const auto count = static_cast<std::size_t>(
      std::max(0.0, std::ceil(length.value() / interval_.value())));
  const std::size_t last = std::min(first + count, samples_.size());
  return PowerTrace{interval_,
                    std::vector<Watts>(samples_.begin() + first,
                                       samples_.begin() + last)};
}

PowerTrace PowerTrace::with_outage(Minutes from, Minutes length) const {
  if (length.value() <= 0.0) {
    throw TraceError("trace: outage length must be positive");
  }
  std::vector<Watts> samples = samples_;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double t = static_cast<double>(i) * interval_.value();
    if (t >= from.value() && t < from.value() + length.value()) {
      samples[i] = Watts{0.0};
    }
  }
  return PowerTrace{interval_, std::move(samples)};
}

PowerTrace PowerTrace::load_csv(const std::filesystem::path& path) {
  const CsvTable table = CsvTable::load(path);
  const auto minutes = table.numeric_column("minute");
  const auto watts = table.numeric_column("watts");
  if (minutes.size() < 2) {
    throw TraceError("trace csv: need at least two samples");
  }
  const double interval = minutes[1] - minutes[0];
  if (interval <= 0.0) {
    throw TraceError("trace csv: non-increasing timestamps");
  }
  for (std::size_t i = 1; i < minutes.size(); ++i) {
    if (minutes[i] <= minutes[i - 1]) {
      throw TraceError("trace csv: row " + std::to_string(i + 1) +
                       ": timestamp " + std::to_string(minutes[i]) +
                       " does not increase");
    }
    if (i >= 2 && std::fabs((minutes[i] - minutes[i - 1]) - interval) > 1e-6) {
      throw TraceError("trace csv: row " + std::to_string(i + 1) +
                       ": irregular sampling interval");
    }
  }
  std::vector<Watts> samples;
  samples.reserve(watts.size());
  for (std::size_t i = 0; i < watts.size(); ++i) {
    if (watts[i] < 0.0) {
      throw TraceError("trace csv: row " + std::to_string(i + 1) +
                       ": negative power " + std::to_string(watts[i]));
    }
    samples.emplace_back(watts[i]);
  }
  return PowerTrace{Minutes{interval}, std::move(samples)};
}

void PowerTrace::save_csv(const std::filesystem::path& path) const {
  CsvTable table({"minute", "watts"});
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    table.add_numeric_row(
        {interval_.value() * static_cast<double>(i), samples_[i].value()});
  }
  table.save(path);
}

}  // namespace greenhetero
