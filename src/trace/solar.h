// Synthetic solar production traces.
//
// The paper replays two one-week NREL MIDC irradiance traces (15-minute
// samples): a *High* trace (clear, high-yield days) and a *Low* trace
// (overcast, strongly fluctuating days).  Those exact files are not
// redistributable, so this generator reproduces their statistical structure:
//
//   production(t) = capacity * clear_sky(t) * weather(t)
//
// - clear_sky(t): cosine-of-zenith daylight bell between sunrise and sunset
//   (zero at night), the deterministic diurnal envelope;
// - weather(t): mean-reverting cloud attenuation (AR(1) on a 15-minute step)
//   with day-scale regimes, giving the short-term dips of Case B and whole
//   overcast days for the Low trace.
//
// Generated traces are deterministic for a given seed.
#pragma once

#include <cstdint>

#include "trace/trace.h"
#include "util/units.h"

namespace greenhetero {

/// Tunable parameters of the synthetic solar model.
struct SolarModel {
  Watts capacity{2500.0};        ///< peak panel output on a perfect day
  double sunrise_hour = 6.0;     ///< local time the envelope opens
  double sunset_hour = 18.0;     ///< local time the envelope closes
  double mean_clearness = 0.9;   ///< long-run average of weather(t)
  double clearness_floor = 0.0;  ///< lower clip for weather(t)
  double volatility = 0.05;      ///< step stddev of the AR(1) cloud process
  double reversion = 0.15;       ///< AR(1) pull toward the day's regime mean
  double overcast_probability = 0.0;  ///< chance a day is an overcast regime
  double overcast_clearness = 0.25;   ///< regime mean on overcast days
};

/// Presets matching the paper's two NREL traces.
[[nodiscard]] SolarModel high_solar_model(Watts capacity);
[[nodiscard]] SolarModel low_solar_model(Watts capacity);

/// Generate `days` days of production at `interval` sampling (default the
/// paper's 15 minutes).  Deterministic in `seed`.
[[nodiscard]] PowerTrace generate_solar_trace(const SolarModel& model,
                                              int days, std::uint64_t seed,
                                              Minutes interval = Minutes{15.0});

/// Convenience: one-week High / Low traces as used throughout the evaluation.
[[nodiscard]] PowerTrace high_solar_week(Watts capacity, std::uint64_t seed);
[[nodiscard]] PowerTrace low_solar_week(Watts capacity, std::uint64_t seed);

/// The deterministic clear-sky envelope in [0, 1] at hour-of-day `h`.
[[nodiscard]] double clear_sky_envelope(const SolarModel& model, double h);

}  // namespace greenhetero
