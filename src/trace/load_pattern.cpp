#include "trace/load_pattern.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace greenhetero {

namespace {

/// Smooth interpolation between two levels as x goes 0 -> 1.
double smoothstep(double a, double b, double x) {
  x = std::clamp(x, 0.0, 1.0);
  const double s = x * x * (3.0 - 2.0 * x);
  return a + (b - a) * s;
}

}  // namespace

double diurnal_utilization(const LoadPatternModel& model, double h) {
  // Segments: night trough -> morning ramp -> day plateau -> climb to the
  // evening peak -> fall back to the night trough.
  const double ramp_len = 2.5;   // hours for the morning ramp
  const double climb_len = 3.0;  // hours of pre-peak climb
  const double fall_len = model.night_hour - model.evening_peak_hour;

  if (h < model.morning_ramp_hour) {
    return model.night_level;
  }
  if (h < model.morning_ramp_hour + ramp_len) {
    return smoothstep(model.night_level, model.day_level,
                      (h - model.morning_ramp_hour) / ramp_len);
  }
  if (h < model.evening_peak_hour - climb_len) {
    return model.day_level;
  }
  if (h < model.evening_peak_hour) {
    return smoothstep(model.day_level, model.evening_peak,
                      1.0 - (model.evening_peak_hour - h) / climb_len);
  }
  if (h < model.night_hour) {
    return smoothstep(model.evening_peak, model.night_level,
                      (h - model.evening_peak_hour) / fall_len);
  }
  return model.night_level;
}

PowerTrace generate_load_trace(const LoadPatternModel& model, Watts scale,
                               int days, std::uint64_t seed,
                               Minutes interval) {
  if (days <= 0) {
    throw TraceError("load pattern: days must be positive");
  }
  Rng rng(seed);
  const auto samples_per_day =
      static_cast<std::size_t>(std::llround(24.0 * 60.0 / interval.value()));
  std::vector<Watts> samples;
  samples.reserve(samples_per_day * static_cast<std::size_t>(days));
  for (int day = 0; day < days; ++day) {
    for (std::size_t s = 0; s < samples_per_day; ++s) {
      const double hour = static_cast<double>(s) * interval.value() / 60.0;
      double util = diurnal_utilization(model, hour) +
                    rng.gaussian(0.0, model.jitter);
      util = std::clamp(util, 0.01, 1.0);
      samples.push_back(scale * util);
    }
  }
  return PowerTrace{interval, std::move(samples)};
}

}  // namespace greenhetero
