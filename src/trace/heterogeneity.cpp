#include "trace/heterogeneity.h"

#include "util/rng.h"

namespace greenhetero {

const std::array<DatacenterHeterogeneity, 10>&
google_datacenter_heterogeneity() {
  // Values read off Figure 1 (Whare-Map's ten surveyed Google datacenters).
  static const std::array<DatacenterHeterogeneity, 10> kData = {{
      {"DC-1", 3},
      {"DC-2", 2},
      {"DC-3", 4},
      {"DC-4", 3},
      {"DC-5", 2},
      {"DC-6", 5},
      {"DC-7", 3},
      {"DC-8", 2},
      {"DC-9", 4},
      {"DC-10", 3},
  }};
  return kData;
}

std::vector<int> heterogeneity_histogram() {
  std::vector<int> histogram(6, 0);  // counts 0..5
  for (const auto& dc : google_datacenter_heterogeneity()) {
    histogram[static_cast<std::size_t>(dc.config_count)] += 1;
  }
  return histogram;
}

double fraction_with_at_most(int count) {
  int matching = 0;
  const auto& data = google_datacenter_heterogeneity();
  for (const auto& dc : data) {
    if (dc.config_count <= count) ++matching;
  }
  return static_cast<double>(matching) / static_cast<double>(data.size());
}

int sample_config_count(std::uint64_t seed, std::uint64_t index) {
  Rng rng = Rng(seed).fork(index);
  const auto& data = google_datacenter_heterogeneity();
  const int pick = rng.uniform_int(0, static_cast<int>(data.size()) - 1);
  return data[static_cast<std::size_t>(pick)].config_count;
}

}  // namespace greenhetero
