// Diurnal rack-demand pattern.
//
// Figure 6 of the paper drives the 24-hour runs with "a typical datacenter
// server rack power pattern" from Wang et al. (SIGMETRICS'12): a daytime
// plateau with a morning ramp, an evening peak and a night trough.  This
// generator produces that shape as a utilisation series in [min_util, 1]
// which the simulator maps onto rack power demand.
#pragma once

#include <cstdint>

#include "trace/trace.h"
#include "util/units.h"

namespace greenhetero {

struct LoadPatternModel {
  double night_level = 0.45;    ///< utilisation in the overnight trough
  double day_level = 0.85;      ///< utilisation on the working-hours plateau
  double evening_peak = 1.0;    ///< utilisation at the evening spike
  double morning_ramp_hour = 7.0;
  double evening_peak_hour = 20.0;
  double night_hour = 23.0;
  double jitter = 0.02;         ///< per-sample gaussian jitter
};

/// Deterministic utilisation-fraction value (no jitter) at hour-of-day `h`,
/// piecewise-smooth between the model's anchor levels.
[[nodiscard]] double diurnal_utilization(const LoadPatternModel& model,
                                         double h);

/// A `days`-day utilisation trace sampled every `interval`; samples are the
/// diurnal shape plus seeded jitter, clipped to (0, 1].  The trace stores the
/// fraction scaled by `scale` watts so it composes with PowerTrace tooling;
/// pass scale = the rack's peak demand to get a demand trace directly.
[[nodiscard]] PowerTrace generate_load_trace(const LoadPatternModel& model,
                                             Watts scale, int days,
                                             std::uint64_t seed,
                                             Minutes interval = Minutes{15.0});

}  // namespace greenhetero
