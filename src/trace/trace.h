// Fixed-interval power time series.
//
// Both the renewable supply (NREL irradiance is reported every 15 minutes)
// and the rack demand pattern are represented as a `PowerTrace`: a start-
// aligned sequence of watt samples at a constant interval, with step-wise
// lookup (a sample holds until the next one) plus optional linear
// interpolation for plotting.
#pragma once

#include <cstddef>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "util/units.h"

namespace greenhetero {

class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class PowerTrace {
 public:
  PowerTrace() = default;
  PowerTrace(Minutes interval, std::vector<Watts> samples);

  [[nodiscard]] Minutes interval() const { return interval_; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] Minutes duration() const {
    return interval_ * static_cast<double>(samples_.size());
  }

  [[nodiscard]] Watts sample(std::size_t index) const;
  [[nodiscard]] const std::vector<Watts>& samples() const { return samples_; }

  /// Step lookup: the value in force at elapsed time `t` from trace start.
  /// Out-of-range times clamp to the first/last sample.
  [[nodiscard]] Watts at(Minutes t) const;

  /// Linear interpolation between samples (for smooth plots).
  [[nodiscard]] Watts interpolate(Minutes t) const;

  /// Mean power over the whole trace.
  [[nodiscard]] Watts mean_power() const;
  [[nodiscard]] Watts peak_power() const;

  /// Total energy represented by the trace.
  [[nodiscard]] WattHours total_energy() const;

  /// Uniformly scale all samples (e.g. panel area scaling).
  [[nodiscard]] PowerTrace scaled(double factor) const;

  /// Extract [from, from + length) as a new trace (clamped to bounds).
  [[nodiscard]] PowerTrace window(Minutes from, Minutes length) const;

  /// Copy with samples in [from, from + length) zeroed — inverter trip,
  /// grid-operator curtailment order, or a blown feeder (failure
  /// injection for robustness tests).
  [[nodiscard]] PowerTrace with_outage(Minutes from, Minutes length) const;

  /// CSV round trip: columns `minute,watts`.
  [[nodiscard]] static PowerTrace load_csv(const std::filesystem::path& path);
  void save_csv(const std::filesystem::path& path) const;

 private:
  Minutes interval_{15.0};
  std::vector<Watts> samples_;
};

}  // namespace greenhetero
