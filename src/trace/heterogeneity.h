// Datacenter heterogeneity statistics (Figure 1 of the paper).
//
// Figure 1 reports the number of distinct server microarchitectural
// configurations in ten randomly selected Google datacenters (from Mars et
// al., "Whare-Map", ISCA'13): between 2 and 5 configurations per datacenter,
// with ~80% of datacenters at 2-3 configurations.  We encode that data and a
// sampler for generating synthetic heterogeneous datacenters that match the
// distribution — used by the Fig. 1 bench and the multi-rack examples.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace greenhetero {

/// One datacenter's configuration count, as read off Figure 1.
struct DatacenterHeterogeneity {
  const char* name;
  int config_count;
};

/// The ten Google datacenters of Figure 1.
[[nodiscard]] const std::array<DatacenterHeterogeneity, 10>&
google_datacenter_heterogeneity();

/// Histogram over configuration counts (index = count, value = #datacenters).
[[nodiscard]] std::vector<int> heterogeneity_histogram();

/// Fraction of the surveyed datacenters with `count` or fewer configurations.
[[nodiscard]] double fraction_with_at_most(int count);

/// Sample a configuration count for a synthetic datacenter, following the
/// empirical Figure 1 distribution.  Deterministic in `seed`/`index`.
[[nodiscard]] int sample_config_count(std::uint64_t seed, std::uint64_t index);

}  // namespace greenhetero
