#include "trace/solar.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace greenhetero {

SolarModel high_solar_model(Watts capacity) {
  SolarModel model;
  model.capacity = capacity;
  model.mean_clearness = 0.92;
  model.volatility = 0.03;
  model.reversion = 0.2;
  model.overcast_probability = 0.05;
  model.overcast_clearness = 0.45;
  return model;
}

SolarModel low_solar_model(Watts capacity) {
  SolarModel model;
  model.capacity = capacity;
  model.mean_clearness = 0.55;
  model.volatility = 0.12;
  model.reversion = 0.1;
  model.overcast_probability = 0.4;
  model.overcast_clearness = 0.2;
  return model;
}

double clear_sky_envelope(const SolarModel& model, double h) {
  if (h <= model.sunrise_hour || h >= model.sunset_hour) {
    return 0.0;
  }
  const double daylight = model.sunset_hour - model.sunrise_hour;
  const double phase = (h - model.sunrise_hour) / daylight;  // in (0, 1)
  // Half-sine: 0 at sunrise/sunset, 1 at solar noon.
  return std::sin(phase * std::numbers::pi);
}

PowerTrace generate_solar_trace(const SolarModel& model, int days,
                                std::uint64_t seed, Minutes interval) {
  if (days <= 0) {
    throw TraceError("solar: days must be positive");
  }
  if (interval.value() <= 0.0) {
    throw TraceError("solar: interval must be positive");
  }
  Rng rng(seed);
  const auto samples_per_day =
      static_cast<std::size_t>(std::llround(24.0 * 60.0 / interval.value()));
  std::vector<Watts> samples;
  samples.reserve(samples_per_day * static_cast<std::size_t>(days));

  double clearness = model.mean_clearness;
  for (int day = 0; day < days; ++day) {
    const bool overcast = rng.bernoulli(model.overcast_probability);
    const double regime_mean =
        overcast ? model.overcast_clearness : model.mean_clearness;
    for (std::size_t s = 0; s < samples_per_day; ++s) {
      const double hour =
          static_cast<double>(s) * interval.value() / 60.0;
      // Mean-reverting cloud attenuation step.
      clearness += model.reversion * (regime_mean - clearness) +
                   rng.gaussian(0.0, model.volatility);
      clearness = std::clamp(clearness, model.clearness_floor, 1.0);
      const double envelope = clear_sky_envelope(model, hour);
      samples.push_back(model.capacity * (envelope * clearness));
    }
  }
  return PowerTrace{interval, std::move(samples)};
}

PowerTrace high_solar_week(Watts capacity, std::uint64_t seed) {
  return generate_solar_trace(high_solar_model(capacity), 7, seed);
}

PowerTrace low_solar_week(Watts capacity, std::uint64_t seed) {
  return generate_solar_trace(low_solar_model(capacity), 7, seed);
}

}  // namespace greenhetero
