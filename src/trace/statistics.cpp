#include "trace/statistics.h"

#include <algorithm>
#include <cmath>

namespace greenhetero {

TraceStatistics analyze_trace(const PowerTrace& trace) {
  if (trace.empty()) {
    throw TraceError("statistics: empty trace");
  }
  TraceStatistics stats;
  stats.mean = trace.mean_power();
  stats.peak = trace.peak_power();
  stats.load_factor =
      stats.peak.value() > 0.0 ? stats.mean / stats.peak : 0.0;

  double sum_sq = 0.0;
  double ramp_sum = 0.0;
  double max_ramp = 0.0;
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double v = trace.sample(i).value();
    const double d = v - stats.mean.value();
    sum_sq += d * d;
    if (v < 1e-9) ++zeros;
    if (i > 0) {
      const double ramp = std::fabs(v - trace.sample(i - 1).value());
      ramp_sum += ramp;
      max_ramp = std::max(max_ramp, ramp);
    }
  }
  const auto n = static_cast<double>(trace.size());
  const double variance = sum_sq / n;
  stats.variability =
      stats.mean.value() > 0.0 ? std::sqrt(variance) / stats.mean.value()
                               : 0.0;
  stats.mean_ramp =
      Watts{trace.size() > 1 ? ramp_sum / (n - 1.0) : 0.0};
  stats.max_ramp = Watts{max_ramp};
  stats.zero_fraction = static_cast<double>(zeros) / n;

  if (trace.size() > 1 && variance > 0.0) {
    double covariance = 0.0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      covariance += (trace.sample(i).value() - stats.mean.value()) *
                    (trace.sample(i - 1).value() - stats.mean.value());
    }
    stats.autocorrelation = covariance / (n - 1.0) / variance;
  }
  return stats;
}

double insufficiency_fraction(const PowerTrace& supply,
                              const PowerTrace& demand) {
  if (supply.empty() || demand.empty()) {
    throw TraceError("statistics: empty trace");
  }
  if (std::fabs(supply.interval().value() - demand.interval().value()) >
      1e-9) {
    throw TraceError("statistics: traces must share the sampling interval");
  }
  const std::size_t n = std::min(supply.size(), demand.size());
  std::size_t short_samples = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (supply.sample(i).value() < demand.sample(i).value()) {
      ++short_samples;
    }
  }
  return static_cast<double>(short_samples) / static_cast<double>(n);
}

std::vector<Watts> diurnal_profile(const PowerTrace& trace) {
  if (trace.empty()) {
    throw TraceError("statistics: empty trace");
  }
  std::vector<double> sums(24, 0.0);
  std::vector<int> counts(24, 0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double minute =
        static_cast<double>(i) * trace.interval().value();
    const auto hour =
        static_cast<std::size_t>(std::fmod(minute, 24.0 * 60.0) / 60.0);
    sums[hour] += trace.sample(i).value();
    counts[hour] += 1;
  }
  std::vector<Watts> profile;
  profile.reserve(24);
  for (int h = 0; h < 24; ++h) {
    profile.emplace_back(counts[h] > 0 ? sums[h] / counts[h] : 0.0);
  }
  return profile;
}

}  // namespace greenhetero
