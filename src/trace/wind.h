// Synthetic wind production traces.
//
// The paper's green datacenter draws from "on-site renewable power supplies
// such as photovoltaic (PV) and wind".  This generator produces a turbine
// power trace from a standard pipeline:
//
//  - wind speed follows a Weibull distribution (shape ~2 is typical) with
//    AR(1) temporal persistence (a Gaussian copula keeps the marginal
//    Weibull while correlating successive samples);
//  - the turbine power curve is zero below cut-in, grows with the cube of
//    the speed up to the rated speed, holds rated power to cut-out, and
//    shuts down (storm protection) beyond it.
//
// Wind complements solar: it blows at night, so a hybrid plant flattens the
// Case C battery drain the solar-only runs show.
#pragma once

#include <cstdint>

#include "trace/trace.h"
#include "util/units.h"

namespace greenhetero {

struct WindModel {
  Watts rated_power{2000.0};
  double cut_in_ms = 3.0;    ///< m/s below which the turbine produces nothing
  double rated_ms = 12.0;    ///< m/s at which rated power is reached
  double cut_out_ms = 25.0;  ///< m/s storm shutdown
  double weibull_shape = 2.0;
  double weibull_scale = 7.5;   ///< m/s; mean speed ~ scale * 0.886 for k=2
  double persistence = 0.88;    ///< AR(1) coefficient per 15-minute step
};

/// Turbine output fraction of rated power at wind speed `speed_ms`.
[[nodiscard]] double wind_power_fraction(const WindModel& model,
                                         double speed_ms);

/// Generate `days` of production at `interval` sampling; deterministic in
/// `seed`.
[[nodiscard]] PowerTrace generate_wind_trace(const WindModel& model, int days,
                                             std::uint64_t seed,
                                             Minutes interval = Minutes{15.0});

/// Element-wise sum of two equally shaped traces (hybrid PV + wind plant).
[[nodiscard]] PowerTrace combine_traces(const PowerTrace& a,
                                        const PowerTrace& b);

}  // namespace greenhetero
