// Minimal leveled logger.
//
// The controller and simulator report decisions (source switches, PAR
// choices, training runs) through this logger; benches and examples raise the
// level to keep their table output clean, tests can capture it.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace greenhetero {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// Process-wide logging configuration.  log() is safe to call from the
/// fleet's pool threads: the sink runs under a mutex, so messages emit as
/// whole lines and a capturing sink (ScopedLogCapture) needs no locking of
/// its own.  Configuration (set_level / set_sink) should still happen from
/// one thread, outside any parallel region.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }

  /// Replace the output sink (default writes to stderr).  Pass nullptr to
  /// restore the default.  Returns the previous sink so tests can restore it.
  Sink set_sink(Sink sink);

  void log(LogLevel level, std::string_view message);

  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;  ///< serialises sink invocation (whole-line output)
  Sink sink_;
};

/// RAII log capture for tests: redirects the global sink (and optionally
/// lowers the level) for its lifetime, restoring both on destruction.
class ScopedLogCapture {
 public:
  struct Entry {
    LogLevel level;
    std::string message;
  };

  explicit ScopedLogCapture(LogLevel capture_level = LogLevel::kDebug);
  ~ScopedLogCapture();
  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  /// True when any captured message contains `needle`.
  [[nodiscard]] bool contains(std::string_view needle) const;
  void clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
  Logger::Sink previous_sink_;
  LogLevel previous_level_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace greenhetero

// Stream-style logging macros; the stream expression is not evaluated when
// the level is disabled.
#define GH_LOG(level)                                               \
  if (!::greenhetero::Logger::instance().enabled(level)) {          \
  } else                                                            \
    ::greenhetero::detail::LogLine(level)

#define GH_DEBUG GH_LOG(::greenhetero::LogLevel::kDebug)
#define GH_INFO GH_LOG(::greenhetero::LogLevel::kInfo)
#define GH_WARN GH_LOG(::greenhetero::LogLevel::kWarn)
#define GH_ERROR GH_LOG(::greenhetero::LogLevel::kError)
