// Reusable fixed-size worker pool for fork/join parallelism.
//
// parallel_for(n, fn) runs fn(i) for every i in [0, n) across the pool's
// worker threads *and* the calling thread, then blocks until all n calls
// have returned — the call itself is the barrier.  Indices are claimed one
// at a time under the pool mutex (work items are expected to be heavy — a
// full per-rack epoch step — so claim overhead is noise), and any thread
// may run any index; callers needing deterministic results must make fn(i)
// a pure function of i (the fleet's per-rack epoch step is: every rack owns
// its simulator, telemetry and RNG).
//
// Exceptions thrown by fn are captured per index and, after the barrier,
// the one with the *lowest index* is rethrown on the calling thread — which
// worker hit an error first does not change what the caller sees, keeping
// error reporting deterministic too.
//
// A pool constructed with threads == 1 spawns no workers at all:
// parallel_for degenerates to an inline sequential loop on the calling
// thread, byte-identical to never having had a pool (the --threads 1 path).
//
// One job at a time: parallel_for must not be called concurrently from two
// threads, nor recursively from inside fn (the nested call would deadlock
// waiting for workers that are busy running its parent).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace greenhetero::util {

class ThreadPool {
 public:
  /// `threads` counts the calling thread: a pool of N runs work on N-1
  /// workers plus the caller.  0 picks hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return threads_; }

  /// Run fn(i) for every i in [0, n); returns after all complete.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency(), never zero.
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  void worker_loop();
  /// Claim and run items of the current job until none are left.  `lock`
  /// must hold mutex_ on entry; it holds it again on return (released
  /// around each fn call).
  void drain_current_job(std::unique_lock<std::mutex>& lock);

  std::size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: a new job (or stop) arrived
  std::condition_variable done_cv_;  ///< caller: all items of the job finished
  // Current job; all fields guarded by mutex_ except errors_, whose slots
  // are each written by exactly one thread (mutex_ release/acquire orders
  // the writes before the caller's final read).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t job_size_ = 0;
  std::size_t next_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace greenhetero::util
