// Numeric optimisation primitives shared by the Solver (PAR search) and the
// predictor trainer (alpha/beta grid search).
//
// The objective surfaces here are cheap to evaluate but only piecewise-smooth
// (clamping at server idle/peak power introduces kinks), so the workhorse is
// coarse-grid scan + local refinement rather than derivative methods.
#pragma once

#include <functional>
#include <utility>

namespace greenhetero {

/// Result of a scalar maximisation.
struct ScalarOptimum {
  double x = 0.0;
  double value = 0.0;
};

/// Result of a two-variable maximisation.
struct PlanarOptimum {
  double x = 0.0;
  double y = 0.0;
  double value = 0.0;
};

/// Maximise a unimodal function on [lo, hi] by golden-section search.
/// `tolerance` is the final bracket width on x.
[[nodiscard]] ScalarOptimum golden_section_maximize(
    const std::function<double(double)>& f, double lo, double hi,
    double tolerance = 1e-6);

/// Maximise an arbitrary (possibly multi-modal, kinked) function on [lo, hi]:
/// scan `coarse_steps` evenly spaced points, then golden-section refine around
/// the best cell.  Robust to the plateaus and kinks of clamped perf curves.
[[nodiscard]] ScalarOptimum grid_refine_maximize(
    const std::function<double(double)>& f, double lo, double hi,
    int coarse_steps = 64, double tolerance = 1e-6);

/// Maximise f(x, y) over the triangle/box x in [xlo, xhi], y in [ylo, yhi]
/// with optional constraint x + y <= sum_cap (pass a negative cap to
/// disable).  Coarse grid then iterative coordinate refinement.
[[nodiscard]] PlanarOptimum grid_refine_maximize_2d(
    const std::function<double(double, double)>& f, double xlo, double xhi,
    double ylo, double yhi, double sum_cap = -1.0, int coarse_steps = 32,
    int refine_rounds = 4);

}  // namespace greenhetero
