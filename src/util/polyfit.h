// Least-squares polynomial fitting.
//
// GreenHetero's performance-power database fits `Perf = l*P^2 + m*P + n`
// (Section IV-B.2 of the paper: quadratic chosen as the complexity /
// accuracy sweet spot).  This module provides general degree-d least squares
// via normal equations with Gaussian elimination, plus the quadratic
// convenience type the database uses.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace greenhetero {

/// Thrown when a fit is requested with too few points or a singular system.
class FitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Coefficients low-order-first: value(x) = c[0] + c[1] x + ... + c[d] x^d.
struct Polynomial {
  std::vector<double> coefficients;

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] double derivative_at(double x) const;
  [[nodiscard]] std::size_t degree() const {
    return coefficients.empty() ? 0 : coefficients.size() - 1;
  }
};

/// Least-squares fit of a degree-`degree` polynomial to (x, y) samples.
/// Requires at least degree + 1 samples; throws FitError otherwise or when
/// the normal equations are singular (e.g. all x identical).
[[nodiscard]] Polynomial polyfit(std::span<const double> x,
                                 std::span<const double> y,
                                 std::size_t degree);

/// Root-mean-square error of `poly` over the given samples.
[[nodiscard]] double fit_rmse(const Polynomial& poly,
                              std::span<const double> x,
                              std::span<const double> y);

/// A quadratic y = a x^2 + b x + c with the operations the Solver needs.
struct Quadratic {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;

  [[nodiscard]] double operator()(double x) const { return (a * x + b) * x + c; }
  [[nodiscard]] double slope(double x) const { return 2.0 * a * x + b; }
  /// Is the quadratic concave (diminishing returns), i.e. a <= 0?
  [[nodiscard]] bool concave() const { return a <= 0.0; }
  /// x of the vertex; only meaningful when a != 0.
  [[nodiscard]] double vertex() const { return -b / (2.0 * a); }

  [[nodiscard]] static Quadratic from_polynomial(const Polynomial& p);
};

/// Quadratic least squares over (x, y); needs >= 3 samples.
[[nodiscard]] Quadratic quadratic_fit(std::span<const double> x,
                                      std::span<const double> y);

/// Solve a small dense linear system A x = b in place (partial pivoting).
/// Throws FitError when singular.  Exposed for tests.
[[nodiscard]] std::vector<double> solve_linear_system(
    std::vector<std::vector<double>> a, std::vector<double> b);

}  // namespace greenhetero
