#include "util/thread_pool.h"

#include <algorithm>

namespace greenhetero::util {

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? hardware_threads() : threads) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain_current_job(std::unique_lock<std::mutex>& lock) {
  while (next_ < job_size_) {
    const std::size_t i = next_++;
    const std::function<void(std::size_t)>* fn = fn_;
    lock.unlock();
    try {
      (*fn)(i);
    } catch (...) {
      errors_[i] = std::current_exception();
    }
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    drain_current_job(lock);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Sequential path: run inline; the first failure propagates directly
    // (which is also the lowest failing index).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  job_size_ = n;
  next_ = 0;
  pending_ = n;
  errors_.assign(n, nullptr);
  ++generation_;
  work_cv_.notify_all();

  drain_current_job(lock);  // the caller participates
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  fn_ = nullptr;
  job_size_ = 0;
  std::vector<std::exception_ptr> errors;
  errors.swap(errors_);
  lock.unlock();

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace greenhetero::util
