#include "util/csv.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"

namespace greenhetero {

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) {
    // Trim surrounding whitespace.
    const auto first = cell.find_first_not_of(" \t\r");
    const auto last = cell.find_last_not_of(" \t\r");
    cells.push_back(first == std::string::npos
                        ? std::string{}
                        : cell.substr(first, last - first + 1));
  }
  if (!line.empty() && line.back() == ',') {
    cells.emplace_back();
  }
  return cells;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

CsvTable CsvTable::parse(const std::string& text, bool has_header) {
  CsvTable table;
  std::istringstream stream(text);
  std::string line;
  bool first = true;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;  // allow comments / blank separators
    }
    auto cells = split_line(line);
    if (first && has_header) {
      table.header_ = std::move(cells);
      first = false;
      continue;
    }
    first = false;
    if (!table.rows_.empty() && cells.size() != table.rows_.front().size()) {
      throw CsvError("csv: ragged row at line " + std::to_string(line_number));
    }
    table.rows_.push_back(std::move(cells));
  }
  return table;
}

CsvTable CsvTable::load(const std::filesystem::path& path, bool has_header) {
  std::ifstream in(path);
  if (!in) {
    throw CsvError("csv: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), has_header);
}

std::size_t CsvTable::column_count() const {
  if (!header_.empty()) return header_.size();
  if (!rows_.empty()) return rows_.front().size();
  return 0;
}

const std::vector<std::string>& CsvTable::row(std::size_t i) const {
  if (i >= rows_.size()) {
    throw CsvError("csv: row index " + std::to_string(i) + " out of range");
  }
  return rows_[i];
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw CsvError("csv: no column named '" + name + "'");
}

const std::string& CsvTable::cell(std::size_t row, std::size_t col) const {
  const auto& r = this->row(row);
  if (col >= r.size()) {
    throw CsvError("csv: column index " + std::to_string(col) +
                   " out of range");
  }
  return r[col];
}

double CsvTable::number(std::size_t row, std::size_t col) const {
  const std::string& text = cell(row, col);
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw CsvError("csv: cell '" + text + "' is not numeric");
  }
  // from_chars happily parses "nan" and "inf"; no consumer of these tables
  // can do anything sensible with either.
  if (!std::isfinite(value)) {
    throw CsvError("csv: cell '" + text + "' is not a finite number");
  }
  return value;
}

double CsvTable::number(std::size_t row, const std::string& col) const {
  return number(row, column_index(col));
}

std::vector<double> CsvTable::numeric_column(const std::string& name) const {
  const std::size_t col = column_index(name);
  std::vector<double> values;
  values.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    values.push_back(number(i, col));
  }
  return values;
}

void CsvTable::add_row(std::vector<std::string> cells) {
  if (!header_.empty() && cells.size() != header_.size()) {
    throw CsvError("csv: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

void CsvTable::add_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream out;
    out << v;
    cells.push_back(out.str());
  }
  add_row(std::move(cells));
}

std::string CsvTable::to_string() const {
  std::ostringstream out;
  auto write_row = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << cells[i];
    }
    out << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& r : rows_) write_row(r);
  return out.str();
}

void CsvTable::save(const std::filesystem::path& path) const {
  // Temp-file + rename: a crash mid-save must never replace a good file
  // (the perf-power database persists across runs through this path).
  try {
    util::write_file_atomic(path, to_string());
  } catch (const util::AtomicWriteError& e) {
    throw CsvError("csv: cannot write " + path.string() + ": " + e.what());
  }
}

}  // namespace greenhetero
