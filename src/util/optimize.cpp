#include "util/optimize.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace greenhetero {

ScalarOptimum golden_section_maximize(const std::function<double(double)>& f,
                                      double lo, double hi, double tolerance) {
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  while (b - a > tolerance) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    }
  }
  const double x = 0.5 * (a + b);
  return ScalarOptimum{x, f(x)};
}

ScalarOptimum grid_refine_maximize(const std::function<double(double)>& f,
                                   double lo, double hi, int coarse_steps,
                                   double tolerance) {
  coarse_steps = std::max(coarse_steps, 2);
  double best_x = lo;
  double best_value = f(lo);
  const double step = (hi - lo) / coarse_steps;
  for (int i = 1; i <= coarse_steps; ++i) {
    const double x = (i == coarse_steps) ? hi : lo + step * i;
    const double value = f(x);
    if (value > best_value) {
      best_value = value;
      best_x = x;
    }
  }
  // Refine inside the two neighbouring cells around the best grid point.
  const double refine_lo = std::max(lo, best_x - step);
  const double refine_hi = std::min(hi, best_x + step);
  ScalarOptimum refined =
      golden_section_maximize(f, refine_lo, refine_hi, tolerance);
  if (refined.value >= best_value) {
    return refined;
  }
  return ScalarOptimum{best_x, best_value};
}

PlanarOptimum grid_refine_maximize_2d(
    const std::function<double(double, double)>& f, double xlo, double xhi,
    double ylo, double yhi, double sum_cap, int coarse_steps,
    int refine_rounds) {
  coarse_steps = std::max(coarse_steps, 2);
  const auto feasible = [sum_cap](double x, double y) {
    return sum_cap < 0.0 || x + y <= sum_cap + 1e-12;
  };

  PlanarOptimum best{xlo, ylo,
                     feasible(xlo, ylo) ? f(xlo, ylo)
                                        : -std::numeric_limits<double>::max()};
  const double xstep = (xhi - xlo) / coarse_steps;
  const double ystep = (yhi - ylo) / coarse_steps;
  for (int i = 0; i <= coarse_steps; ++i) {
    const double x = (i == coarse_steps) ? xhi : xlo + xstep * i;
    for (int j = 0; j <= coarse_steps; ++j) {
      double y = (j == coarse_steps) ? yhi : ylo + ystep * j;
      if (!feasible(x, y)) {
        // Snap onto the constraint boundary so boundary optima are sampled.
        y = sum_cap - x;
        if (y < ylo || y > yhi) break;
      }
      const double value = f(x, y);
      if (value > best.value) {
        best = PlanarOptimum{x, y, value};
      }
      if (sum_cap >= 0.0 && x + y >= sum_cap) break;
    }
  }

  // Alternating 1-D refinements around the best point.
  double span_x = xstep;
  double span_y = ystep;
  for (int round = 0; round < refine_rounds; ++round) {
    {
      const double lo = std::max(xlo, best.x - span_x);
      double hi = std::min(xhi, best.x + span_x);
      if (sum_cap >= 0.0) hi = std::min(hi, sum_cap - best.y);
      if (hi > lo) {
        const double y = best.y;
        auto opt = grid_refine_maximize([&](double x) { return f(x, y); }, lo,
                                        hi, 16, 1e-7);
        if (opt.value > best.value) {
          best.x = opt.x;
          best.value = opt.value;
        }
      }
    }
    {
      const double lo = std::max(ylo, best.y - span_y);
      double hi = std::min(yhi, best.y + span_y);
      if (sum_cap >= 0.0) hi = std::min(hi, sum_cap - best.x);
      if (hi > lo) {
        const double x = best.x;
        auto opt = grid_refine_maximize([&](double y) { return f(x, y); }, lo,
                                        hi, 16, 1e-7);
        if (opt.value > best.value) {
          best.y = opt.x;
          best.value = opt.value;
        }
      }
    }
    span_x *= 0.5;
    span_y *= 0.5;
  }
  return best;
}

}  // namespace greenhetero
