// Small CSV reader/writer used for trace import/export and bench output.
//
// Deliberately minimal: comma-separated, optional header row, no quoting of
// embedded commas (our columns are numeric or simple identifiers).  Parse
// errors are reported with row/column positions.
#pragma once

#include <cstddef>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

namespace greenhetero {

/// Parse failure with location information.
class CsvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An in-memory CSV table: a header and rows of string cells.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  /// Parse from text.  If `has_header` the first line names the columns.
  static CsvTable parse(const std::string& text, bool has_header = true);

  /// Load from a file (throws CsvError on I/O failure).
  static CsvTable load(const std::filesystem::path& path,
                       bool has_header = true);

  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const;

  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Index of a named column; throws CsvError if absent.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;

  /// Cell accessors.  `number` throws CsvError on non-numeric content.
  [[nodiscard]] const std::string& cell(std::size_t row,
                                        std::size_t col) const;
  [[nodiscard]] double number(std::size_t row, std::size_t col) const;
  [[nodiscard]] double number(std::size_t row, const std::string& col) const;

  /// Whole column as doubles.
  [[nodiscard]] std::vector<double> numeric_column(
      const std::string& name) const;

  void add_row(std::vector<std::string> cells);
  void add_numeric_row(const std::vector<double>& values);

  /// Serialise (header first when present).
  [[nodiscard]] std::string to_string() const;
  void save(const std::filesystem::path& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace greenhetero
