// Atomic file replacement.
//
// Every file artifact the simulator produces non-incrementally (metrics
// snapshots, buffered trace exports, Chrome spans, rollup series, fuzzer
// repro files, checkpoints) goes through the same temp-and-rename dance: a
// process killed mid-write must leave either the previous complete file or
// no file — never a torn one.  Extracted from the `--metrics-out` flush
// introduced with the streaming pipeline so all writers share one
// implementation.
#pragma once

#include <filesystem>
#include <stdexcept>
#include <string_view>

namespace greenhetero::util {

/// Thrown when the temp file cannot be created, written, or renamed.
class AtomicWriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes `body` to `path` by writing `path` + ".tmp" and renaming over the
/// destination.  The rename is atomic on POSIX filesystems, so a crash at
/// any point leaves the previous version of `path` intact.
void write_file_atomic(const std::filesystem::path& path,
                       std::string_view body);

}  // namespace greenhetero::util
