#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cstdint>

namespace greenhetero::json {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t offset) {
  throw JsonError("json: " + std::string(what) + " at offset " +
                  std::to_string(offset));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return v;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal", pos_);
        return Value::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal", pos_);
        return Value::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal", pos_);
        return Value::make_null();
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::vector<Member> members;
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      if (peek() != '"') fail("expected object key", pos_);
      std::string key = parse_string();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
    return Value::make_object(std::move(members));
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
    return Value::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape", pos_ - 1);
      }
    }
    return out;
  }

  void append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape", pos_ - 1);
      }
    }
    // UTF-8 encode the BMP code point (the traces only ever escape control
    // characters; surrogate pairs are out of scope and pass through as-is).
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      fail("invalid number", start);
    }
    return Value::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void wrong_kind(std::string_view wanted) {
  throw JsonError("json: value is not " + std::string(wanted));
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) wrong_kind("a boolean");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) wrong_kind("a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) wrong_kind("a string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::kArray) wrong_kind("an array");
  return array_;
}

const std::vector<Member>& Value::as_object() const {
  if (kind_ != Kind::kObject) wrong_kind("an object");
  return object_;
}

const Value* Value::find(std::string_view key) const {
  for (const Member& m : as_object()) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->as_number() : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string_view fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->as_string() : std::string(fallback);
}

Value Value::make_bool(bool v) {
  Value out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::make_number(double v) {
  Value out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

Value Value::make_string(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::make_array(std::vector<Value> v) {
  Value out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

Value Value::make_object(std::vector<Member> v) {
  Value out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

Value parse(std::string_view text) { return Parser{text}.parse_document(); }

}  // namespace greenhetero::json
