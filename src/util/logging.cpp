#include "util/logging.h"

#include <iostream>

namespace greenhetero {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view message) {
    std::cerr << "[" << to_string(level) << "] " << message << "\n";
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Sink Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Sink previous = std::move(sink_);
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view message) {
      std::cerr << "[" << to_string(level) << "] " << message << "\n";
    };
  }
  return previous;
}

void Logger::log(LogLevel level, std::string_view message) {
  if (enabled(level)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    sink_(level, message);
  }
}

ScopedLogCapture::ScopedLogCapture(LogLevel capture_level)
    : previous_level_(Logger::instance().level()) {
  Logger::instance().set_level(capture_level);
  previous_sink_ = Logger::instance().set_sink(
      [this](LogLevel level, std::string_view message) {
        entries_.push_back({level, std::string(message)});
      });
}

ScopedLogCapture::~ScopedLogCapture() {
  Logger::instance().set_sink(std::move(previous_sink_));
  Logger::instance().set_level(previous_level_);
}

bool ScopedLogCapture::contains(std::string_view needle) const {
  for (const Entry& entry : entries_) {
    if (entry.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace greenhetero
