#include "util/logging.h"

#include <iostream>

namespace greenhetero {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view message) {
    std::cerr << "[" << to_string(level) << "] " << message << "\n";
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Sink Logger::set_sink(Sink sink) {
  Sink previous = std::move(sink_);
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view message) {
      std::cerr << "[" << to_string(level) << "] " << message << "\n";
    };
  }
  return previous;
}

void Logger::log(LogLevel level, std::string_view message) {
  if (enabled(level)) {
    sink_(level, message);
  }
}

}  // namespace greenhetero
