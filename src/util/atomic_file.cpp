#include "util/atomic_file.h"

#include <fstream>
#include <system_error>

namespace greenhetero::util {

void write_file_atomic(const std::filesystem::path& path,
                       std::string_view body) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw AtomicWriteError("cannot open temp file for atomic write: " +
                             tmp.string());
    }
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) {
      throw AtomicWriteError("write to temp file failed: " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw AtomicWriteError("atomic rename failed: " + tmp.string() + " -> " +
                           path.string() + ": " + ec.message());
  }
}

}  // namespace greenhetero::util
