// Minimal JSON reader for the trace analyzer.
//
// The analyzer consumes JSONL traces the telemetry layer itself wrote, so
// this parser targets exactly that dialect: objects, arrays, strings with
// standard escapes, numbers, booleans, null.  Two deliberate choices:
//
//  - objects are kept as an ordered vector of (key, value) pairs rather
//    than a map, because trace events may legitimately repeat a key (the
//    "fault_inject" event carries two "phase" fields) and find() must
//    return the first match like every JSON reader the traces target;
//  - parse errors throw JsonError with a byte offset, never assert — the
//    analyzer turns them into actionable CLI messages.
//
// No serialisation here: writing stays with the telemetry exporters, which
// own the deterministic number formatting the goldens depend on.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace greenhetero::json {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value;

using Member = std::pair<std::string, Value>;

/// One parsed JSON value.  Accessors throw JsonError on kind mismatch so
/// the analyzer's schema checks read as one-liners.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& as_array() const;
  [[nodiscard]] const std::vector<Member>& as_object() const;

  /// First member with `key`, or nullptr (objects only; throws otherwise).
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// find() + as_number(), with `fallback` when the key is absent.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  /// find() + as_string(), with `fallback` when the key is absent.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;

  static Value make_null() { return Value{}; }
  static Value make_bool(bool v);
  static Value make_number(double v);
  static Value make_string(std::string v);
  static Value make_array(std::vector<Value> v);
  static Value make_object(std::vector<Member> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace greenhetero::json
