// Deterministic random number generation.
//
// Everything stochastic in the reproduction (weather attenuation in the solar
// generator, measurement noise on profiling samples, load jitter) draws from
// a seeded engine so every bench and test is exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace greenhetero::checkpoint {
class Writer;
class Reader;
}  // namespace greenhetero::checkpoint

namespace greenhetero {

/// Seeded pseudo-random source.  A thin wrapper over std::mt19937_64 with the
/// handful of distributions the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Gaussian with the given mean / standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi);

  /// Bernoulli trial with probability p of true.
  [[nodiscard]] bool bernoulli(double p);

  /// Derive an independent child generator.  The child's stream depends only
  /// on (master seed, label), not on how much of this generator has been
  /// consumed, so forking is order-insensitive.
  [[nodiscard]] Rng fork(std::uint64_t label) const;

  /// Checkpoint the engine state (the mt19937_64 textual state image plus
  /// the fork seed) so a resumed run continues the exact stream.
  void save_state(checkpoint::Writer& w) const;
  void load_state(checkpoint::Reader& r);

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_ = 0;
};

}  // namespace greenhetero
