#include "util/polyfit.h"

#include <cmath>

namespace greenhetero {

double Polynomial::operator()(double x) const {
  double result = 0.0;
  for (std::size_t i = coefficients.size(); i-- > 0;) {
    result = result * x + coefficients[i];
  }
  return result;
}

double Polynomial::derivative_at(double x) const {
  double result = 0.0;
  for (std::size_t i = coefficients.size(); i-- > 1;) {
    result = result * x + static_cast<double>(i) * coefficients[i];
  }
  return result;
}

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n) {
    throw FitError("linear system: dimension mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      throw FitError("linear system: singular matrix");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) {
        a[r][c] -= factor * a[col][c];
      }
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (std::size_t c = row + 1; c < n; ++c) {
      sum -= a[row][c] * x[c];
    }
    x[row] = sum / a[row][row];
  }
  return x;
}

Polynomial polyfit(std::span<const double> x, std::span<const double> y,
                   std::size_t degree) {
  if (x.size() != y.size()) {
    throw FitError("polyfit: x/y size mismatch");
  }
  const std::size_t terms = degree + 1;
  if (x.size() < terms) {
    throw FitError("polyfit: need at least degree+1 samples");
  }
  // Normal equations: (V^T V) c = V^T y with Vandermonde V.  For the small
  // degrees used here (<= 3) this is numerically fine after centring x.
  const double x_mean = [&] {
    double s = 0.0;
    for (double v : x) s += v;
    return s / static_cast<double>(x.size());
  }();

  std::vector<std::vector<double>> ata(terms, std::vector<double>(terms, 0.0));
  std::vector<double> aty(terms, 0.0);
  for (std::size_t k = 0; k < x.size(); ++k) {
    const double xc = x[k] - x_mean;
    double pow_i = 1.0;
    std::vector<double> powers(terms);
    for (std::size_t i = 0; i < terms; ++i) {
      powers[i] = pow_i;
      pow_i *= xc;
    }
    for (std::size_t i = 0; i < terms; ++i) {
      for (std::size_t j = 0; j < terms; ++j) {
        ata[i][j] += powers[i] * powers[j];
      }
      aty[i] += powers[i] * y[k];
    }
  }
  std::vector<double> centred = solve_linear_system(std::move(ata), aty);

  // Expand p(x - x_mean) back to coefficients in x via binomial expansion.
  std::vector<double> result(terms, 0.0);
  for (std::size_t i = 0; i < terms; ++i) {
    // centred[i] * (x - m)^i = centred[i] * sum_j C(i,j) x^j (-m)^(i-j)
    for (std::size_t j = 0; j <= i; ++j) {
      double binom = 1.0;
      for (std::size_t t = 0; t < j; ++t) {
        binom = binom * static_cast<double>(i - t) / static_cast<double>(t + 1);
      }
      result[j] += centred[i] * binom *
                   std::pow(-x_mean, static_cast<double>(i - j));
    }
  }
  return Polynomial{std::move(result)};
}

double fit_rmse(const Polynomial& poly, std::span<const double> x,
                std::span<const double> y) {
  if (x.size() != y.size() || x.empty()) {
    throw FitError("fit_rmse: bad sample set");
  }
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double err = poly(x[i]) - y[i];
    sum_sq += err * err;
  }
  return std::sqrt(sum_sq / static_cast<double>(x.size()));
}

Quadratic Quadratic::from_polynomial(const Polynomial& p) {
  Quadratic q;
  const auto& c = p.coefficients;
  if (!c.empty()) q.c = c[0];
  if (c.size() > 1) q.b = c[1];
  if (c.size() > 2) q.a = c[2];
  return q;
}

Quadratic quadratic_fit(std::span<const double> x, std::span<const double> y) {
  return Quadratic::from_polynomial(polyfit(x, y, 2));
}

}  // namespace greenhetero
