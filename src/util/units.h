// Strong unit types for the quantities that flow through GreenHetero.
//
// Power (watts), energy (watt-hours) and durations (minutes) are all
// represented by `double` at the machine level, which makes it very easy to
// hand a watt-hour value to a function expecting watts.  These thin wrappers
// make such mistakes type errors while keeping the arithmetic that *is*
// meaningful (summing powers, scaling by a ratio, power x time = energy).
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace greenhetero {

namespace detail {

// CRTP base providing the arithmetic shared by all scalar unit types.
template <typename Derived>
class ScalarUnit {
 public:
  constexpr ScalarUnit() = default;
  constexpr explicit ScalarUnit(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value_ + b.value_};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value_ - b.value_};
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value_ * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value_ * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value_ / s};
  }
  // Ratio of two like quantities is a dimensionless double.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value_ / b.value_;
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value_}; }

  Derived& operator+=(Derived other) {
    value_ += other.value_;
    return static_cast<Derived&>(*this);
  }
  Derived& operator-=(Derived other) {
    value_ -= other.value_;
    return static_cast<Derived&>(*this);
  }
  Derived& operator*=(double s) {
    value_ *= s;
    return static_cast<Derived&>(*this);
  }

  friend constexpr auto operator<=>(ScalarUnit a, ScalarUnit b) = default;

 private:
  double value_ = 0.0;
};

}  // namespace detail

/// Electrical power in watts.
class Watts : public detail::ScalarUnit<Watts> {
 public:
  using ScalarUnit::ScalarUnit;
};

/// Energy in watt-hours.
class WattHours : public detail::ScalarUnit<WattHours> {
 public:
  using ScalarUnit::ScalarUnit;
};

/// Duration in minutes (the natural granularity of the simulator: the paper
/// profiles every 2 minutes and schedules every 15).
class Minutes : public detail::ScalarUnit<Minutes> {
 public:
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double hours() const { return value() / 60.0; }
};

/// power x time = energy.
[[nodiscard]] constexpr WattHours operator*(Watts p, Minutes t) {
  return WattHours{p.value() * t.value() / 60.0};
}
[[nodiscard]] constexpr WattHours operator*(Minutes t, Watts p) {
  return p * t;
}
/// energy / time = power.
[[nodiscard]] constexpr Watts operator/(WattHours e, Minutes t) {
  return Watts{e.value() * 60.0 / t.value()};
}
/// energy / power = time.
[[nodiscard]] constexpr Minutes operator/(WattHours e, Watts p) {
  return Minutes{e.value() * 60.0 / p.value()};
}

[[nodiscard]] inline Watts min(Watts a, Watts b) { return a < b ? a : b; }
[[nodiscard]] inline Watts max(Watts a, Watts b) { return a < b ? b : a; }
[[nodiscard]] inline WattHours min(WattHours a, WattHours b) {
  return a < b ? a : b;
}
[[nodiscard]] inline WattHours max(WattHours a, WattHours b) {
  return a < b ? b : a;
}

[[nodiscard]] inline Watts clamp(Watts x, Watts lo, Watts hi) {
  return max(lo, min(x, hi));
}

inline std::ostream& operator<<(std::ostream& os, Watts w) {
  return os << w.value() << "W";
}
inline std::ostream& operator<<(std::ostream& os, WattHours e) {
  return os << e.value() << "Wh";
}
inline std::ostream& operator<<(std::ostream& os, Minutes m) {
  return os << m.value() << "min";
}

// User-defined literals: `220.0_W`, `1200.0_Wh`, `15.0_min`.
namespace literals {
constexpr Watts operator""_W(long double v) {
  return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_W(unsigned long long v) {
  return Watts{static_cast<double>(v)};
}
constexpr WattHours operator""_Wh(long double v) {
  return WattHours{static_cast<double>(v)};
}
constexpr WattHours operator""_Wh(unsigned long long v) {
  return WattHours{static_cast<double>(v)};
}
constexpr Minutes operator""_min(long double v) {
  return Minutes{static_cast<double>(v)};
}
constexpr Minutes operator""_min(unsigned long long v) {
  return Minutes{static_cast<double>(v)};
}
}  // namespace literals

}  // namespace greenhetero
