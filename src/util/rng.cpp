#include "util/rng.h"

#include <sstream>

#include "checkpoint/serializer.h"

namespace greenhetero {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::fork(std::uint64_t label) const {
  // splitmix64-style mix of (seed, label); independent of this engine's
  // consumed state so forking is order-insensitive.
  std::uint64_t z = seed_ + label * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return Rng{z};
}

void Rng::save_state(checkpoint::Writer& w) const {
  w.u64(seed_);
  // The standard guarantees operator<< / operator>> round-trip the engine
  // exactly; the textual image is locale-independent digits and spaces.
  std::ostringstream state;
  state << engine_;
  w.str(state.str());
}

void Rng::load_state(checkpoint::Reader& r) {
  seed_ = r.u64();
  std::istringstream state(r.str());
  state >> engine_;
  if (state.fail()) {
    throw checkpoint::CheckpointError("rng: malformed engine state image");
  }
}

}  // namespace greenhetero
