#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace greenhetero {

double sum(std::span<const double> values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

double mean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("mean of empty range");
  }
  return sum(values) / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    sum_sq += (v - m) * (v - m);
  }
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double min_value(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("min of empty range");
  }
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("max of empty range");
  }
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) {
    throw std::invalid_argument("percentile of empty range");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile p must be in [0, 100]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double geomean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("geomean of empty range");
  }
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geomean requires positive values");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("mse: mismatched or empty series");
  }
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(a.size());
}

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace greenhetero
