// Small statistics helpers used by reports, the predictor trainer and tests.
#pragma once

#include <cstddef>
#include <span>

namespace greenhetero {

[[nodiscard]] double sum(std::span<const double> values);
[[nodiscard]] double mean(std::span<const double> values);
/// Sample standard deviation (n - 1 denominator); 0 for fewer than 2 values.
[[nodiscard]] double stddev(std::span<const double> values);
[[nodiscard]] double min_value(std::span<const double> values);
[[nodiscard]] double max_value(std::span<const double> values);
/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> values, double p);
/// Geometric mean; requires strictly positive values.
[[nodiscard]] double geomean(std::span<const double> values);
/// Mean squared error between two equal-length series.
[[nodiscard]] double mse(std::span<const double> a, std::span<const double> b);

/// Streaming mean/min/max/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double value);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace greenhetero
