file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fleet.dir/bench_ablation_fleet.cpp.o"
  "CMakeFiles/bench_ablation_fleet.dir/bench_ablation_fleet.cpp.o.d"
  "bench_ablation_fleet"
  "bench_ablation_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
