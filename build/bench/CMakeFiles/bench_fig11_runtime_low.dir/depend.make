# Empty dependencies file for bench_fig11_runtime_low.
# This may be replaced when dependencies are built.
