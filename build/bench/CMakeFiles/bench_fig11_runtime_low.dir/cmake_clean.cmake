file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_runtime_low.dir/bench_fig11_runtime_low.cpp.o"
  "CMakeFiles/bench_fig11_runtime_low.dir/bench_fig11_runtime_low.cpp.o.d"
  "bench_fig11_runtime_low"
  "bench_fig11_runtime_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_runtime_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
