# Empty compiler generated dependencies file for bench_ablation_rapl.
# This may be replaced when dependencies are built.
