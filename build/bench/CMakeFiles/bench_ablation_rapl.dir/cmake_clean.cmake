file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rapl.dir/bench_ablation_rapl.cpp.o"
  "CMakeFiles/bench_ablation_rapl.dir/bench_ablation_rapl.cpp.o.d"
  "bench_ablation_rapl"
  "bench_ablation_rapl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
