file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_servers.dir/bench_table2_servers.cpp.o"
  "CMakeFiles/bench_table2_servers.dir/bench_table2_servers.cpp.o.d"
  "bench_table2_servers"
  "bench_table2_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
