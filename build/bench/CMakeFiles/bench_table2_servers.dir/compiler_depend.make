# Empty compiler generated dependencies file for bench_table2_servers.
# This may be replaced when dependencies are built.
