file(REMOVE_RECURSE
  "CMakeFiles/bench_predictor_micro.dir/bench_predictor_micro.cpp.o"
  "CMakeFiles/bench_predictor_micro.dir/bench_predictor_micro.cpp.o.d"
  "bench_predictor_micro"
  "bench_predictor_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predictor_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
