# Empty compiler generated dependencies file for bench_ablation_db_update.
# This may be replaced when dependencies are built.
