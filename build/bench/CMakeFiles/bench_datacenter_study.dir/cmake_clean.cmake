file(REMOVE_RECURSE
  "CMakeFiles/bench_datacenter_study.dir/bench_datacenter_study.cpp.o"
  "CMakeFiles/bench_datacenter_study.dir/bench_datacenter_study.cpp.o.d"
  "bench_datacenter_study"
  "bench_datacenter_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datacenter_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
