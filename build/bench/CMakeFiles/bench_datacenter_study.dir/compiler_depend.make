# Empty compiler generated dependencies file for bench_datacenter_study.
# This may be replaced when dependencies are built.
