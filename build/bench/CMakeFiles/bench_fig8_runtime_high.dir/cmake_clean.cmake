file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_runtime_high.dir/bench_fig8_runtime_high.cpp.o"
  "CMakeFiles/bench_fig8_runtime_high.dir/bench_fig8_runtime_high.cpp.o.d"
  "bench_fig8_runtime_high"
  "bench_fig8_runtime_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_runtime_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
