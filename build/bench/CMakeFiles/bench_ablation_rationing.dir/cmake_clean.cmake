file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rationing.dir/bench_ablation_rationing.cpp.o"
  "CMakeFiles/bench_ablation_rationing.dir/bench_ablation_rationing.cpp.o.d"
  "bench_ablation_rationing"
  "bench_ablation_rationing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rationing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
