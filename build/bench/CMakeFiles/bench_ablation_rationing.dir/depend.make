# Empty dependencies file for bench_ablation_rationing.
# This may be replaced when dependencies are built.
