file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_combinations.dir/bench_fig13_combinations.cpp.o"
  "CMakeFiles/bench_fig13_combinations.dir/bench_fig13_combinations.cpp.o.d"
  "bench_fig13_combinations"
  "bench_fig13_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
