# Empty dependencies file for bench_fig13_combinations.
# This may be replaced when dependencies are built.
