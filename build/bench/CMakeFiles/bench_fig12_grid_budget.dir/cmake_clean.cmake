file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_grid_budget.dir/bench_fig12_grid_budget.cpp.o"
  "CMakeFiles/bench_fig12_grid_budget.dir/bench_fig12_grid_budget.cpp.o.d"
  "bench_fig12_grid_budget"
  "bench_fig12_grid_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_grid_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
