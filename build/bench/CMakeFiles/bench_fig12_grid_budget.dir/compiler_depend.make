# Empty compiler generated dependencies file for bench_fig12_grid_budget.
# This may be replaced when dependencies are built.
