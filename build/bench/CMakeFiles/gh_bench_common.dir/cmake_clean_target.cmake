file(REMOVE_RECURSE
  "libgh_bench_common.a"
)
