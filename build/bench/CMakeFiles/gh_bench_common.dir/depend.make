# Empty dependencies file for gh_bench_common.
# This may be replaced when dependencies are built.
