file(REMOVE_RECURSE
  "CMakeFiles/gh_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/gh_bench_common.dir/bench_common.cpp.o.d"
  "libgh_bench_common.a"
  "libgh_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gh_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
