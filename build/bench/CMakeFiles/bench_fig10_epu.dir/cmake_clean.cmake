file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_epu.dir/bench_fig10_epu.cpp.o"
  "CMakeFiles/bench_fig10_epu.dir/bench_fig10_epu.cpp.o.d"
  "bench_fig10_epu"
  "bench_fig10_epu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_epu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
