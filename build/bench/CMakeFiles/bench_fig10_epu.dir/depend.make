# Empty dependencies file for bench_fig10_epu.
# This may be replaced when dependencies are built.
