# Empty compiler generated dependencies file for bench_modern_stack.
# This may be replaced when dependencies are built.
