file(REMOVE_RECURSE
  "CMakeFiles/bench_modern_stack.dir/bench_modern_stack.cpp.o"
  "CMakeFiles/bench_modern_stack.dir/bench_modern_stack.cpp.o.d"
  "bench_modern_stack"
  "bench_modern_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modern_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
