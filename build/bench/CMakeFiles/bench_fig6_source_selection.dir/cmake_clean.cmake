file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_source_selection.dir/bench_fig6_source_selection.cpp.o"
  "CMakeFiles/bench_fig6_source_selection.dir/bench_fig6_source_selection.cpp.o.d"
  "bench_fig6_source_selection"
  "bench_fig6_source_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_source_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
