# Empty compiler generated dependencies file for bench_fig6_source_selection.
# This may be replaced when dependencies are built.
