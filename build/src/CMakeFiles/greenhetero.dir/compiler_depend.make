# Empty compiler generated dependencies file for greenhetero.
# This may be replaced when dependencies are built.
