# Empty dependencies file for greenhetero.
# This may be replaced when dependencies are built.
