file(REMOVE_RECURSE
  "libgreenhetero.a"
)
