
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cpp" "src/CMakeFiles/greenhetero.dir/core/controller.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/controller.cpp.o.d"
  "/root/repo/src/core/database.cpp" "src/CMakeFiles/greenhetero.dir/core/database.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/database.cpp.o.d"
  "/root/repo/src/core/decision_output.cpp" "src/CMakeFiles/greenhetero.dir/core/decision_output.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/decision_output.cpp.o.d"
  "/root/repo/src/core/enforcer.cpp" "src/CMakeFiles/greenhetero.dir/core/enforcer.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/enforcer.cpp.o.d"
  "/root/repo/src/core/epu.cpp" "src/CMakeFiles/greenhetero.dir/core/epu.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/epu.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/CMakeFiles/greenhetero.dir/core/monitor.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/monitor.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/CMakeFiles/greenhetero.dir/core/placement.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/placement.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/CMakeFiles/greenhetero.dir/core/policies.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/policies.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/CMakeFiles/greenhetero.dir/core/predictor.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/predictor.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/CMakeFiles/greenhetero.dir/core/solver.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/solver.cpp.o.d"
  "/root/repo/src/core/source_selector.cpp" "src/CMakeFiles/greenhetero.dir/core/source_selector.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/core/source_selector.cpp.o.d"
  "/root/repo/src/fleet/fleet.cpp" "src/CMakeFiles/greenhetero.dir/fleet/fleet.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/fleet/fleet.cpp.o.d"
  "/root/repo/src/power/battery.cpp" "src/CMakeFiles/greenhetero.dir/power/battery.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/power/battery.cpp.o.d"
  "/root/repo/src/power/carbon.cpp" "src/CMakeFiles/greenhetero.dir/power/carbon.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/power/carbon.cpp.o.d"
  "/root/repo/src/power/energy_ledger.cpp" "src/CMakeFiles/greenhetero.dir/power/energy_ledger.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/power/energy_ledger.cpp.o.d"
  "/root/repo/src/power/grid.cpp" "src/CMakeFiles/greenhetero.dir/power/grid.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/power/grid.cpp.o.d"
  "/root/repo/src/power/power_bus.cpp" "src/CMakeFiles/greenhetero.dir/power/power_bus.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/power/power_bus.cpp.o.d"
  "/root/repo/src/power/solar_array.cpp" "src/CMakeFiles/greenhetero.dir/power/solar_array.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/power/solar_array.cpp.o.d"
  "/root/repo/src/server/combinations.cpp" "src/CMakeFiles/greenhetero.dir/server/combinations.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/server/combinations.cpp.o.d"
  "/root/repo/src/server/dvfs.cpp" "src/CMakeFiles/greenhetero.dir/server/dvfs.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/server/dvfs.cpp.o.d"
  "/root/repo/src/server/perf_curve.cpp" "src/CMakeFiles/greenhetero.dir/server/perf_curve.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/server/perf_curve.cpp.o.d"
  "/root/repo/src/server/power_cap.cpp" "src/CMakeFiles/greenhetero.dir/server/power_cap.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/server/power_cap.cpp.o.d"
  "/root/repo/src/server/rack.cpp" "src/CMakeFiles/greenhetero.dir/server/rack.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/server/rack.cpp.o.d"
  "/root/repo/src/server/server_sim.cpp" "src/CMakeFiles/greenhetero.dir/server/server_sim.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/server/server_sim.cpp.o.d"
  "/root/repo/src/server/server_spec.cpp" "src/CMakeFiles/greenhetero.dir/server/server_spec.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/server/server_spec.cpp.o.d"
  "/root/repo/src/sim/rack_simulator.cpp" "src/CMakeFiles/greenhetero.dir/sim/rack_simulator.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/sim/rack_simulator.cpp.o.d"
  "/root/repo/src/sim/run_report.cpp" "src/CMakeFiles/greenhetero.dir/sim/run_report.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/sim/run_report.cpp.o.d"
  "/root/repo/src/sim/sim_clock.cpp" "src/CMakeFiles/greenhetero.dir/sim/sim_clock.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/sim/sim_clock.cpp.o.d"
  "/root/repo/src/trace/heterogeneity.cpp" "src/CMakeFiles/greenhetero.dir/trace/heterogeneity.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/trace/heterogeneity.cpp.o.d"
  "/root/repo/src/trace/load_pattern.cpp" "src/CMakeFiles/greenhetero.dir/trace/load_pattern.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/trace/load_pattern.cpp.o.d"
  "/root/repo/src/trace/solar.cpp" "src/CMakeFiles/greenhetero.dir/trace/solar.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/trace/solar.cpp.o.d"
  "/root/repo/src/trace/statistics.cpp" "src/CMakeFiles/greenhetero.dir/trace/statistics.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/trace/statistics.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/greenhetero.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/trace/trace.cpp.o.d"
  "/root/repo/src/trace/wind.cpp" "src/CMakeFiles/greenhetero.dir/trace/wind.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/trace/wind.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/greenhetero.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/greenhetero.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/optimize.cpp" "src/CMakeFiles/greenhetero.dir/util/optimize.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/util/optimize.cpp.o.d"
  "/root/repo/src/util/polyfit.cpp" "src/CMakeFiles/greenhetero.dir/util/polyfit.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/util/polyfit.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/greenhetero.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/greenhetero.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/util/stats.cpp.o.d"
  "/root/repo/src/workload/catalog.cpp" "src/CMakeFiles/greenhetero.dir/workload/catalog.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/workload/catalog.cpp.o.d"
  "/root/repo/src/workload/queueing.cpp" "src/CMakeFiles/greenhetero.dir/workload/queueing.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/workload/queueing.cpp.o.d"
  "/root/repo/src/workload/workload_spec.cpp" "src/CMakeFiles/greenhetero.dir/workload/workload_spec.cpp.o" "gcc" "src/CMakeFiles/greenhetero.dir/workload/workload_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
