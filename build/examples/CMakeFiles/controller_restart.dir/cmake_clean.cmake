file(REMOVE_RECURSE
  "CMakeFiles/controller_restart.dir/controller_restart.cpp.o"
  "CMakeFiles/controller_restart.dir/controller_restart.cpp.o.d"
  "controller_restart"
  "controller_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
