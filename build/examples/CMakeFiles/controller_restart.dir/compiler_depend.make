# Empty compiler generated dependencies file for controller_restart.
# This may be replaced when dependencies are built.
