file(REMOVE_RECURSE
  "CMakeFiles/workload_placement.dir/workload_placement.cpp.o"
  "CMakeFiles/workload_placement.dir/workload_placement.cpp.o.d"
  "workload_placement"
  "workload_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
