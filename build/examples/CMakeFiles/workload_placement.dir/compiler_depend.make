# Empty compiler generated dependencies file for workload_placement.
# This may be replaced when dependencies are built.
