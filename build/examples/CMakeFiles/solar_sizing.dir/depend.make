# Empty dependencies file for solar_sizing.
# This may be replaced when dependencies are built.
