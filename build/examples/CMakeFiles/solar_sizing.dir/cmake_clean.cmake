file(REMOVE_RECURSE
  "CMakeFiles/solar_sizing.dir/solar_sizing.cpp.o"
  "CMakeFiles/solar_sizing.dir/solar_sizing.cpp.o.d"
  "solar_sizing"
  "solar_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solar_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
