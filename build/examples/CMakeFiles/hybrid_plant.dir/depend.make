# Empty dependencies file for hybrid_plant.
# This may be replaced when dependencies are built.
