file(REMOVE_RECURSE
  "CMakeFiles/hybrid_plant.dir/hybrid_plant.cpp.o"
  "CMakeFiles/hybrid_plant.dir/hybrid_plant.cpp.o.d"
  "hybrid_plant"
  "hybrid_plant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
