# Empty compiler generated dependencies file for gpu_cluster.
# This may be replaced when dependencies are built.
