file(REMOVE_RECURSE
  "CMakeFiles/synthetic_datacenter.dir/synthetic_datacenter.cpp.o"
  "CMakeFiles/synthetic_datacenter.dir/synthetic_datacenter.cpp.o.d"
  "synthetic_datacenter"
  "synthetic_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
