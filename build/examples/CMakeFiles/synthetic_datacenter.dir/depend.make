# Empty dependencies file for synthetic_datacenter.
# This may be replaced when dependencies are built.
