file(REMOVE_RECURSE
  "CMakeFiles/greenhetero_cli.dir/greenhetero_cli.cpp.o"
  "CMakeFiles/greenhetero_cli.dir/greenhetero_cli.cpp.o.d"
  "greenhetero"
  "greenhetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhetero_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
