# Empty compiler generated dependencies file for greenhetero_cli.
# This may be replaced when dependencies are built.
