file(REMOVE_RECURSE
  "CMakeFiles/power_cap_test.dir/power_cap_test.cpp.o"
  "CMakeFiles/power_cap_test.dir/power_cap_test.cpp.o.d"
  "power_cap_test"
  "power_cap_test.pdb"
  "power_cap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_cap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
