file(REMOVE_RECURSE
  "CMakeFiles/power_plant_test.dir/power_plant_test.cpp.o"
  "CMakeFiles/power_plant_test.dir/power_plant_test.cpp.o.d"
  "power_plant_test"
  "power_plant_test.pdb"
  "power_plant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_plant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
