file(REMOVE_RECURSE
  "CMakeFiles/rack_test.dir/rack_test.cpp.o"
  "CMakeFiles/rack_test.dir/rack_test.cpp.o.d"
  "rack_test"
  "rack_test.pdb"
  "rack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
