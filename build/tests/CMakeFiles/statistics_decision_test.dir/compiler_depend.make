# Empty compiler generated dependencies file for statistics_decision_test.
# This may be replaced when dependencies are built.
