file(REMOVE_RECURSE
  "CMakeFiles/statistics_decision_test.dir/statistics_decision_test.cpp.o"
  "CMakeFiles/statistics_decision_test.dir/statistics_decision_test.cpp.o.d"
  "statistics_decision_test"
  "statistics_decision_test.pdb"
  "statistics_decision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistics_decision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
