# Empty dependencies file for util_polyfit_test.
# This may be replaced when dependencies are built.
