file(REMOVE_RECURSE
  "CMakeFiles/util_polyfit_test.dir/util_polyfit_test.cpp.o"
  "CMakeFiles/util_polyfit_test.dir/util_polyfit_test.cpp.o.d"
  "util_polyfit_test"
  "util_polyfit_test.pdb"
  "util_polyfit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_polyfit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
