file(REMOVE_RECURSE
  "CMakeFiles/selector_enforcer_test.dir/selector_enforcer_test.cpp.o"
  "CMakeFiles/selector_enforcer_test.dir/selector_enforcer_test.cpp.o.d"
  "selector_enforcer_test"
  "selector_enforcer_test.pdb"
  "selector_enforcer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selector_enforcer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
