# Empty dependencies file for selector_enforcer_test.
# This may be replaced when dependencies are built.
