file(REMOVE_RECURSE
  "CMakeFiles/epu_test.dir/epu_test.cpp.o"
  "CMakeFiles/epu_test.dir/epu_test.cpp.o.d"
  "epu_test"
  "epu_test.pdb"
  "epu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
