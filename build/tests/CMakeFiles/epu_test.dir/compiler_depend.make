# Empty compiler generated dependencies file for epu_test.
# This may be replaced when dependencies are built.
