# Empty compiler generated dependencies file for property_ext_test.
# This may be replaced when dependencies are built.
