# Empty dependencies file for subset_policy_test.
# This may be replaced when dependencies are built.
