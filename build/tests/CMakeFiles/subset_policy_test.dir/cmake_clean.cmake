file(REMOVE_RECURSE
  "CMakeFiles/subset_policy_test.dir/subset_policy_test.cpp.o"
  "CMakeFiles/subset_policy_test.dir/subset_policy_test.cpp.o.d"
  "subset_policy_test"
  "subset_policy_test.pdb"
  "subset_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subset_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
