file(REMOVE_RECURSE
  "CMakeFiles/carbon_test.dir/carbon_test.cpp.o"
  "CMakeFiles/carbon_test.dir/carbon_test.cpp.o.d"
  "carbon_test"
  "carbon_test.pdb"
  "carbon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carbon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
