file(REMOVE_RECURSE
  "CMakeFiles/integration_runtime_test.dir/integration_runtime_test.cpp.o"
  "CMakeFiles/integration_runtime_test.dir/integration_runtime_test.cpp.o.d"
  "integration_runtime_test"
  "integration_runtime_test.pdb"
  "integration_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
