# Empty dependencies file for integration_runtime_test.
# This may be replaced when dependencies are built.
