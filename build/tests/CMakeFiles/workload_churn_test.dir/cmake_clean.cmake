file(REMOVE_RECURSE
  "CMakeFiles/workload_churn_test.dir/workload_churn_test.cpp.o"
  "CMakeFiles/workload_churn_test.dir/workload_churn_test.cpp.o.d"
  "workload_churn_test"
  "workload_churn_test.pdb"
  "workload_churn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
