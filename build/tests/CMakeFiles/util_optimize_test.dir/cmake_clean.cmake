file(REMOVE_RECURSE
  "CMakeFiles/util_optimize_test.dir/util_optimize_test.cpp.o"
  "CMakeFiles/util_optimize_test.dir/util_optimize_test.cpp.o.d"
  "util_optimize_test"
  "util_optimize_test.pdb"
  "util_optimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_optimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
