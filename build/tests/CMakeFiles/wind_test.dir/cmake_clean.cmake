file(REMOVE_RECURSE
  "CMakeFiles/wind_test.dir/wind_test.cpp.o"
  "CMakeFiles/wind_test.dir/wind_test.cpp.o.d"
  "wind_test"
  "wind_test.pdb"
  "wind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
