# Empty compiler generated dependencies file for wind_test.
# This may be replaced when dependencies are built.
