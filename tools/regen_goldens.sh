#!/usr/bin/env bash
# Regenerate every golden trace under tests/golden/ from the current tree.
#
# Run this only when a commit intentionally changes the telemetry schema or
# simulation behaviour, and commit the refreshed goldens together with the
# change (see tests/golden/README.md).  After regenerating, the script
# re-runs the golden suites without GH_UPDATE_GOLDEN to prove the new files
# verify byte-exact.
#
# Usage: tools/regen_goldens.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -d "$build_dir" ]]; then
  echo "error: build directory '$build_dir' not found" >&2
  echo "configure first: cmake -S $repo_root -B $build_dir -G Ninja" >&2
  exit 1
fi

cmake --build "$build_dir" -j \
  --target telemetry_golden_test failure_injection_test greenhetero

echo "==> regenerating golden traces"
GH_UPDATE_GOLDEN=1 "$build_dir/tests/telemetry_golden_test" \
  --gtest_filter='*Golden*'
GH_UPDATE_GOLDEN=1 "$build_dir/tests/failure_injection_test" \
  --gtest_filter='*Golden*'
"$build_dir/tools/greenhetero" simulate --days 1 --seed 42 \
  --trace-out "$repo_root/tests/golden/trace_cli_sim.jsonl"

echo "==> verifying regenerated goldens"
"$build_dir/tests/telemetry_golden_test" --gtest_filter='*Golden*'
"$build_dir/tests/failure_injection_test" --gtest_filter='*Golden*'

echo "==> done; review with: git diff --stat tests/golden/"
