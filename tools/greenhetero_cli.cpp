// greenhetero — command-line front end to the library.
//
//   greenhetero simulate  [--policy P] [--workload W] [--comb CombN]
//                         [--solver grid|analytic]
//                         [--days N] [--trace high|low] [--capacity W]
//                         [--grid W] [--battery-kwh K] [--chemistry lead|li]
//                         [--seed S] [--csv FILE] [--faults PLAN.csv]
//                         [--trace-out FILE.jsonl] [--stream on]
//                         [--metrics-out FILE] [--metrics-every N]
//                         [--rollup-out FILE.jsonl] [--rollup-window MIN]
//                         [--flightrec-dir DIR] [--ledger on]
//                         [--spans-out FILE.json] [--profile-out FILE.json]
//                         [--check on]
//                         [--checkpoint-dir DIR] [--checkpoint-every N]
//                         [--checkpoint-keep K] [--resume DIR]
//   greenhetero analyze   [--trace RUN.jsonl] [--diff BASELINE.jsonl]
//                         [--threshold T] [--perf PROF.json] [--top N]
//   greenhetero policies  [--workload W] [--budget W] [--comb CombN]
//   greenhetero solve     [--workload W] [--budget W] [--comb CombN]
//   greenhetero traces    [--trace high|low|load|wind] [--days N]
//                         [--capacity W] [--out FILE]
//   greenhetero fleet     [--racks N] [--asymmetry A] [--grid W]
//                         [--mode static|proportional] [--threads N]
//                         [--shards N]
//                         [--solver grid|analytic] [--batch-solve on]
//                         [--hours H] [--faults PLAN.csv]
//                         [--trace-out FILE.jsonl] [--stream on]
//                         [--metrics-out FILE] [--metrics-every N]
//                         [--rollup-out FILE.jsonl] [--rollup-window MIN]
//                         [--flightrec-dir DIR] [--ledger on]
//                         [--spans-out FILE.json] [--profile-out FILE.json]
//                         [--check on]
//                         [--checkpoint-dir DIR] [--checkpoint-every N]
//                         [--checkpoint-keep K] [--resume DIR]
//   greenhetero fuzz      [--seed S] [--runs N] [--run R] [--racks N]
//                         [--epochs E] [--shards N] [--max-faults F]
//   greenhetero fuzz      --crash [--seed S] [--runs N] [--max-kills K]
//                         [--crash-dir DIR]
//   greenhetero benchdiff CURRENT.json BASELINE.json [--threshold T]
//                         [--trajectory FILE.jsonl] [--date YYYY-MM-DD]
//   greenhetero info      [--json]  (servers, workloads, combinations,
//                         telemetry/build flags)
//
// --metrics-out picks its format by extension: ".json" exports JSON, ".txt"
// a human-readable table (histograms with p50/p90/p99), anything else
// Prometheus text exposition.  The file is also rewritten mid-run every
// --metrics-every epochs (default 128; crash-safe temp-file + rename), so a
// long run's metrics survive an abort.
//
// --stream on (with --trace-out) drains trace events to the file as the run
// progresses through a bounded queue instead of buffering the whole run —
// byte-identical output, flat memory.  gh_trace_queue_depth /
// gh_trace_stalls_total expose the backpressure.
//
// --rollup-out writes a compact fixed-window per-rack series (mean EPU,
// shortfall, grid, health occupancy, loss buckets; --rollup-window minutes
// per window, default 60) that `analyze` renders as a rollup trend table;
// the same events are also embedded in the main trace.
//
// --flightrec-dir keeps a small always-on ring of recent full-detail events
// per rack and dumps it (plus a metrics snapshot and the fault plan) into
// the directory when a rack's health tracker leaves normal, an invariant
// fires, or the run aborts.
//
// --ledger records the per-epoch EPU loss ledger ("loss_ledger" trace
// events + gh_loss_* metrics); --spans-out enables control-loop span
// tracing and writes a Chrome trace_event JSON (chrome://tracing,
// Perfetto).  Both are off by default to keep traces byte-deterministic.
//
// fleet --threads N steps the racks on N worker threads per epoch (0, the
// default, uses one per hardware thread; 1 forces the sequential path).
// --shards S splits the fleet into S contiguous rack groups, each stepping
// on its own slice of the worker pool with one cheap top-level budget
// exchange per epoch (0 derives one shard per worker thread); at 10k-rack
// scale this replaces the single global barrier with S small ones.
// Reports and traces are byte-identical for every thread and shard count.
//
// --check enables the runtime invariant checker (src/check/invariants.h):
// every substep and epoch is validated against the invariant registry and
// the first violation aborts the run with a structured diagnostic.  Results
// are byte-identical with or without it (the checker is read-only).
//
// fuzz generates seed-replayable random scenarios (rack mixes, solar
// traces, fault plans), runs each sequentially and in parallel with
// invariants on, cross-checks the solver against the brute-force oracle,
// and on failure prints a shrunk repro command line; exits 4 on failure.
//
// --profile-out enables the in-process profiler: every GH_SPAN phase gets
// wall ns, thread-CPU ns and allocation bytes/counts attributed to its span
// path, and the merged phase tree lands in FILE.json at the end of the run.
// Everything except the *_ns timings is byte-identical at any --threads;
// `analyze --perf FILE.json` renders it (--top N hot phases, default 10).
//
// analyze exits 0 when --diff stays within --threshold (default 0.01) and
// 3 when it drifts beyond it — the CI trace gate keys off that.
//
// benchdiff applies the same exit-code contract to performance: it compares
// the *_ns (lower better) and *_per_sec (higher better) figures of a fresh
// BENCH_*.json against a committed baseline and exits 3 when any drifts past
// --threshold (default 10%; accepts "0.15" or "15%").  --trajectory appends
// one dated row (metrics + build info) to the committed history log.
//
// --checkpoint-dir enables durable checkpointing: every --checkpoint-every
// epochs (default 1) the complete resumable state — RNG streams, clock,
// battery/server/controller state, fault cursors, telemetry, streamed-file
// watermarks — is written as a versioned, checksummed snapshot (temp file +
// rename; the newest --checkpoint-keep are retained).  --resume DIR reloads
// the latest valid snapshot and continues the run; final reports, traces,
// rollups and metrics come out byte-identical to an uninterrupted run at
// any thread count.  SIGINT/SIGTERM stop the run at the next epoch barrier:
// a last checkpoint is written, outputs are finalized for the completed
// epochs and the process exits 5.
//
// fuzz --crash drives real `fleet` child processes, SIGKILLs them at random
// points, resumes them via --resume and byte-compares the outputs against
// an uninterrupted reference; exits 4 on any divergence.
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <ctime>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/benchdiff.h"
#include "analysis/perf_report.h"
#include "analysis/trace_analyzer.h"
#include "check/crash.h"
#include "check/fuzzer.h"
#include "checkpoint/checkpoint.h"
#include "core/policies.h"
#include "faults/fault_plan.h"
#include "fleet/fleet.h"
#include "power/carbon.h"
#include "server/combinations.h"
#include "sim/rack_simulator.h"
#include "trace/load_pattern.h"
#include "trace/solar.h"
#include "trace/statistics.h"
#include "trace/wind.h"
#include "util/atomic_file.h"
#include "util/logging.h"

namespace {

using namespace greenhetero;

struct Args {
  std::map<std::string, std::string> options;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
      std::exit(2);
    }
    key = key.substr(2);
    // A flag followed by another flag (or by nothing) is a bare switch:
    // `--check` reads as `--check on`.  No value ever starts with "--".
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      args.options[key] = "on";
      continue;
    }
    args.options[key] = argv[++i];
  }
  return args;
}

/// Scenario fingerprint: FNV-1a over every (sorted) option that shapes the
/// simulation itself.  Output destinations, checkpoint knobs and the thread
/// count are excluded — changing where results land (or how many workers
/// compute them; results are byte-identical by contract) must not
/// invalidate a resume, while changing the scenario must.
std::uint64_t scenario_hash(const Args& args) {
  static const char* kExcluded[] = {
      "trace-out",  "rollup-out",     "metrics-out",      "metrics-every",
      "spans-out",  "csv",            "flightrec-dir",    "stream",
      "out",        "checkpoint-dir", "checkpoint-every", "checkpoint-keep",
      "resume",     "threads",        "repro-out",        "profile-out",
      "batch-solve",  // batched solves are bit-identical by contract
      "shards"};      // execution topology only; outputs are byte-identical
  std::string canon;
  for (const auto& [key, value] : args.options) {
    bool excluded = false;
    for (const char* e : kExcluded) {
      if (key == e) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;
    canon += key;
    canon += '=';
    canon += value;
    canon += '\n';
  }
  return checkpoint::fnv1a(canon);
}

/// Set by the SIGINT/SIGTERM handler; the simulator/fleet polls it at every
/// epoch barrier, writes a final checkpoint and finalizes what completed.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

void install_stop_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

/// Exit code for a run cut short by SIGINT/SIGTERM (outputs are finalized
/// for the completed epochs and a last checkpoint was written).
constexpr int kExitInterrupted = 5;

/// Shared by simulate and fleet: resolve --checkpoint-dir / --resume into
/// (directory, latest snapshot).  --resume DIR implies checkpointing into
/// DIR; an empty or invalid directory warns and starts fresh (a crash may
/// land before the first checkpoint ever gets written).
struct ResumeOptions {
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  int checkpoint_keep = 2;
  std::optional<checkpoint::Snapshot> snapshot;
};

ResumeOptions parse_resume_options(const Args& args) {
  ResumeOptions opt;
  opt.checkpoint_dir = args.get("checkpoint-dir", "");
  opt.checkpoint_every =
      static_cast<int>(args.number("checkpoint-every", 1.0));
  opt.checkpoint_keep =
      static_cast<int>(args.number("checkpoint-keep", 2.0));
  const std::string resume_dir = args.get("resume", "");
  if (resume_dir.empty()) return opt;
  if (opt.checkpoint_dir.empty()) opt.checkpoint_dir = resume_dir;
  opt.snapshot = checkpoint::load_latest(resume_dir);
  if (!opt.snapshot) {
    std::fprintf(stderr,
                 "resume: no valid snapshot in %s; starting fresh (will "
                 "checkpoint into it)\n",
                 resume_dir.c_str());
  }
  return opt;
}

/// The path of this very binary (for the crash fuzzer's re-exec); falls
/// back to argv[0] where /proc/self/exe is unavailable.
std::string g_argv0;

std::string self_exe_path() {
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec && !self.empty()) return self.string();
  return g_argv0;
}

/// Shared by simulate and fleet: the streaming / rollup / flight-recorder
/// knobs that configure a TelemetryConfig and the run's sink.
struct StreamOptions {
  bool stream = false;
  std::string trace_out;
  std::string rollup_out;
  double rollup_window_min = 0.0;
  std::string flightrec_dir;
  std::string metrics_out;
  int metrics_every = 128;
};

StreamOptions parse_stream_options(const Args& args) {
  StreamOptions opt;
  opt.trace_out = args.get("trace-out", "");
  opt.stream = !args.get("stream", "").empty();
  if (opt.stream && opt.trace_out.empty()) {
    std::fprintf(stderr, "--stream on requires --trace-out FILE.jsonl\n");
    std::exit(2);
  }
  opt.rollup_out = args.get("rollup-out", "");
  // --rollup-window alone also enables the aggregator (events land in the
  // main trace); --rollup-out alone defaults to hourly windows.
  opt.rollup_window_min =
      args.number("rollup-window", opt.rollup_out.empty() ? 0.0 : 60.0);
  opt.flightrec_dir = args.get("flightrec-dir", "");
  opt.metrics_out = args.get("metrics-out", "");
  opt.metrics_every = static_cast<int>(args.number("metrics-every", 128.0));
  return opt;
}

void print_stream_stats(const telemetry::StreamingTraceSink& sink) {
  std::printf("  trace streamed to %s (%llu events, %llu stall(s), peak "
              "queue %zu)\n",
              sink.config().path.string().c_str(),
              static_cast<unsigned long long>(sink.events_written()),
              static_cast<unsigned long long>(sink.stalls()),
              sink.peak_queue_depth());
}

PolicyKind parse_policy(const std::string& name) {
  for (PolicyKind kind : kAllPolicies) {
    if (name == to_string(kind)) return kind;
  }
  std::fprintf(stderr, "unknown policy '%s' (try GreenHetero, Uniform, "
               "Manual, GreenHetero-p, GreenHetero-a)\n", name.c_str());
  std::exit(2);
}

SolverBackend parse_solver(const Args& args) {
  const std::string name = args.get("solver", "grid");
  if (name == "analytic") return SolverBackend::kAnalyticN;
  if (name == "grid") return SolverBackend::kGridRefine;
  std::fprintf(stderr, "unknown solver '%s' (try grid, analytic)\n",
               name.c_str());
  std::exit(2);
}

std::vector<ServerGroup> parse_groups(const Args& args) {
  const std::string comb = args.get("comb", "");
  if (comb.empty()) return default_runtime_rack();
  return combination_by_name(comb).groups;
}

Workload parse_workload(const Args& args) {
  return workload_by_name(args.get("workload", "SPECjbb"));
}

int cmd_info(const Args& args) {
  if (!args.get("json", "").empty()) {
    // Machine-readable build/feature flags; benchdiff --trajectory embeds
    // the same object so every history row records its build.
    std::printf("%s\n", telemetry::build_info_json().c_str());
    return 0;
  }
  std::printf("Servers (Table II):\n");
  for (const auto& s : all_server_specs()) {
    std::printf("  %-16s %d sockets, %4d cores @ %.3f GHz, %3.0f-%3.0f W\n",
                std::string(s.name).c_str(), s.sockets, s.cores,
                s.frequency_ghz, s.idle_power.value(), s.peak_power.value());
  }
  std::printf("\nWorkloads (Table I):\n");
  for (const auto& w : all_workload_specs()) {
    std::printf("  %-24s %-11s %s\n", std::string(w.name).c_str(),
                std::string(to_string(w.suite)).c_str(),
                std::string(w.metric).c_str());
  }
  std::printf("\nCombinations (Table IV):\n");
  for (const auto& c : table4_combinations()) {
    std::printf("  %-8s", std::string(c.name).c_str());
    for (const auto& g : c.groups) {
      std::printf(" %dx %s,", g.count,
                  std::string(server_spec(g.model).name).c_str());
    }
    std::printf("\b \n");
  }
  std::printf("\nPolicies (Table III): ");
  for (PolicyKind kind : kAllPolicies) {
    std::printf("%s ", std::string(to_string(kind)).c_str());
  }
  std::printf("\n");
  const telemetry::BuildInfo build = telemetry::build_info();
  std::printf("\nTelemetry build:\n");
  std::printf("  probes/spans:     %s\n",
              build.probes_enabled ? "enabled"
                                   : "compiled out (-DGH_TELEMETRY=OFF)");
  std::printf("  trace schema:     v%d\n", build.trace_schema_version);
  std::printf("  builtin metrics:  %zu\n", build.builtin_metric_count);
  return 0;
}

int cmd_simulate(const Args& args) {
  const std::vector<ServerGroup> groups = parse_groups(args);
  const Workload workload = parse_workload(args);
  const PolicyKind policy = parse_policy(args.get("policy", "GreenHetero"));
  const int days = static_cast<int>(args.number("days", 1.0));
  const Watts capacity{args.number("capacity", 2500.0)};
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 42.0));

  Rack rack{groups, workload};
  SimConfig cfg;
  cfg.controller.policy = policy;
  cfg.controller.seed = seed;
  cfg.controller.solver_backend = parse_solver(args);
  cfg.telemetry.loss_ledger = !args.get("ledger", "").empty();
  cfg.check = !args.get("check", "").empty();
  const std::string spans_out = args.get("spans-out", "");
  cfg.telemetry.spans = !spans_out.empty();
  const std::string profile_out = args.get("profile-out", "");
  cfg.telemetry.profile = !profile_out.empty();
  const StreamOptions stream_opt = parse_stream_options(args);
  cfg.telemetry.rollup_window_min = stream_opt.rollup_window_min;
  cfg.telemetry.flightrec_dir = stream_opt.flightrec_dir;
  const ResumeOptions resume_opt = parse_resume_options(args);
  if (stream_opt.stream) {
    telemetry::StreamSinkConfig sink_cfg{stream_opt.trace_out};
    // Resume mode defers the open/header; load_checkpoint truncates the
    // existing file to the durable watermark and reopens it for append.
    sink_cfg.resume = resume_opt.snapshot.has_value();
    cfg.trace_stream = sink_cfg;
  }
  cfg.checkpoint_dir = resume_opt.checkpoint_dir;
  cfg.checkpoint_every = resume_opt.checkpoint_every;
  cfg.checkpoint_keep = resume_opt.checkpoint_keep;
  cfg.config_hash = scenario_hash(args);
  cfg.stop_flag = &g_stop;
  install_stop_handlers();
  cfg.metrics_out = stream_opt.metrics_out;
  cfg.metrics_flush_every = stream_opt.metrics_every;
  const std::string faults = args.get("faults", "");
  if (!faults.empty()) {
    cfg.faults = FaultPlan::load_csv(faults);
    std::printf("fault plan: %zu event(s) from %s\n", cfg.faults.size(),
                faults.c_str());
  }
  cfg.demand_trace =
      generate_load_trace(LoadPatternModel{}, rack.peak_demand(),
                          days + 1, seed);
  GridSpec grid;
  grid.budget = Watts{args.number("grid", 1000.0)};

  const std::string trace_kind = args.get("trace", "high");
  const PowerTrace solar =
      trace_kind == "low"
          ? generate_solar_trace(low_solar_model(capacity), days + 1, seed)
          : generate_solar_trace(high_solar_model(capacity), days + 1, seed);

  BatterySpec battery =
      args.get("chemistry", "lead") == "li"
          ? li_ion_spec(WattHours{args.number("battery-kwh", 12.0) * 1000.0})
          : lead_acid_spec(
                WattHours{args.number("battery-kwh", 12.0) * 1000.0});

  RackSimulator sim{std::move(rack),
                    RackPowerPlant{SolarArray{solar}, Battery{battery},
                                   GridSupply{grid}},
                    std::move(cfg)};
  // pretrain() always runs: load_checkpoint overwrites its effects (the
  // database, RNG streams and rack state all come from the snapshot), so
  // fresh and resumed runs take the identical construction path.
  sim.pretrain();
  if (resume_opt.snapshot) {
    sim.load_checkpoint(*resume_opt.snapshot);
    std::printf("resumed from %s (epoch %llu)\n",
                resume_opt.snapshot->path.string().c_str(),
                static_cast<unsigned long long>(
                    resume_opt.snapshot->epoch_index));
  }
  RunReport report;
  try {
    report = sim.run(Minutes{days * 24.0 * 60.0});
  } catch (const check::InvariantViolation&) {
    throw;  // step_epoch already dumped the flight record for this one
  } catch (const std::exception&) {
    sim.dump_flight_record("run_abort");
    throw;
  }

  std::printf("policy %s, workload %s, %d day(s), %s trace\n",
              std::string(to_string(policy)).c_str(),
              std::string(workload_spec(workload).name).c_str(), days,
              trace_kind.c_str());
  std::printf("  mean throughput:  %.0f\n", report.mean_throughput());
  std::printf("  EPU:              %.1f%%\n", report.overall_epu * 100.0);
  std::printf("  renewable used:   %.1f kWh (%.0f%% of production)\n",
              (report.ledger.renewable_to_load() +
               report.ledger.renewable_to_battery()).value() / 1000.0,
              report.ledger.renewable_utilization() * 100.0);
  std::printf("  grid energy:      %.1f kWh  (cost $%.2f)\n",
              report.grid_energy.value() / 1000.0, report.grid_cost);
  std::printf("  battery cycles:   %.2f\n", report.battery_cycles);
  if (const check::InvariantChecker* checker = sim.checker()) {
    std::printf("  invariants:       %llu checks over %llu substeps / %llu "
                "epochs, all passed\n",
                static_cast<unsigned long long>(checker->checks_passed()),
                static_cast<unsigned long long>(checker->substeps_checked()),
                static_cast<unsigned long long>(checker->epochs_checked()));
  }
  const CarbonReport carbon = carbon_report(report.ledger);
  std::printf("  CO2e:             %.1f kg (%.0f g/kWh; %.1f kg saved vs "
              "all-grid)\n",
              carbon.total_kg, carbon.effective_g_per_kwh, carbon.saved_kg);

  const std::string csv = args.get("csv", "");
  if (!csv.empty()) {
    report.to_csv().save(csv);
    std::printf("  per-epoch trail written to %s\n", csv.c_str());
  }
  if (telemetry::StreamingTraceSink* sink = sim.stream()) {
    sink->close();
    print_stream_stats(*sink);
  } else if (!stream_opt.trace_out.empty()) {
    sim.telemetry().trace().save_jsonl(stream_opt.trace_out);
    std::printf("  trace (%zu events) written to %s\n",
                sim.telemetry().trace().size(), stream_opt.trace_out.c_str());
  }
  if (!stream_opt.rollup_out.empty()) {
    std::ostringstream out;
    sim.telemetry().rollup().write_jsonl(out, sim.telemetry().rack_id());
    util::write_file_atomic(stream_opt.rollup_out, out.str());
    std::printf("  rollup series (%zu windows) written to %s\n",
                sim.telemetry().rollup().windows().size(),
                stream_opt.rollup_out.c_str());
  }
  if (!stream_opt.flightrec_dir.empty()) {
    std::printf("  flight recorder: %d dump(s) in %s\n",
                sim.telemetry().flightrec().dumps(),
                stream_opt.flightrec_dir.c_str());
  }
  if (!spans_out.empty()) {
    sim.telemetry().spans().save_chrome_trace(spans_out);
    std::printf("  spans (%zu) written to %s (load in chrome://tracing)\n",
                sim.telemetry().spans().records().size(), spans_out.c_str());
  }
  if (!profile_out.empty()) {
    telemetry::save_profile_json(sim.telemetry().profiler().report(),
                                 profile_out);
    std::printf("  profile (%zu phases) written to %s (inspect with "
                "`greenhetero analyze --perf`)\n",
                sim.telemetry().profiler().report().size(),
                profile_out.c_str());
  }
  if (!stream_opt.metrics_out.empty()) {
    // run() already wrote the final snapshot (and the periodic ones).
    std::printf("  metrics (%zu series) written to %s\n",
                report.metrics.entries.size(), stream_opt.metrics_out.c_str());
  }
  if (report.interrupted) {
    sim.dump_flight_record("interrupted");
    std::printf("interrupted after %zu epoch(s); outputs cover the completed "
                "prefix%s\n",
                report.epochs.size(),
                resume_opt.checkpoint_dir.empty()
                    ? ""
                    : ", resume with --resume");
    return kExitInterrupted;
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  const std::string trace_path = args.get("trace", "");
  const std::string perf_path = args.get("perf", "");
  if (trace_path.empty() && perf_path.empty()) {
    std::fprintf(stderr,
                 "analyze: --trace FILE.jsonl or --perf PROF.json is "
                 "required\n");
    return 2;
  }
  std::optional<analysis::TraceAnalysis> run;
  if (!trace_path.empty()) {
    run = analysis::analyze(analysis::load_trace(trace_path));
    print_report(std::cout, *run);
  }
  if (!perf_path.empty()) {
    const analysis::PerfProfile profile = analysis::load_profile(perf_path);
    if (run) std::cout << "\n";
    analysis::print_perf_report(
        std::cout, profile,
        static_cast<std::size_t>(args.number("top", 10.0)));
  }

  const std::string baseline_path = args.get("diff", "");
  if (baseline_path.empty() || !run) return 0;
  const analysis::TraceAnalysis baseline =
      analysis::analyze(analysis::load_trace(baseline_path));
  const double threshold = args.number("threshold", 0.01);
  const analysis::DiffResult result = analysis::diff(baseline, *run);
  std::cout << "\n";
  print_diff(std::cout, result, threshold);
  return analysis::exceeds_threshold(result, threshold) ? 3 : 0;
}

int cmd_policies(const Args& args) {
  const std::vector<ServerGroup> groups = parse_groups(args);
  const Workload workload = parse_workload(args);
  Rack probe{groups, workload};
  const Watts budget{
      args.number("budget", probe.peak_demand().value() * 0.55)};

  std::printf("workload %s, green budget %.0f W\n\n",
              std::string(workload_spec(workload).name).c_str(),
              budget.value());
  std::printf("%-16s %14s %8s\n", "policy", "throughput", "EPU");
  for (PolicyKind policy : kAllPolicies) {
    Rack rack{groups, workload};
    SimConfig cfg;
    cfg.controller.policy = policy;
    cfg.controller.seed = 7;
    RackSimulator sim{std::move(rack),
                      make_fixed_budget_plant(budget, Minutes{10.0 * 60.0}),
                      std::move(cfg)};
    sim.pretrain();
    const RunReport report = sim.run(Minutes{6.0 * 60.0});
    std::printf("%-16s %14.0f %7.0f%%\n",
                std::string(to_string(policy)).c_str(),
                report.mean_throughput(), report.overall_epu * 100.0);
  }
  return 0;
}

int cmd_solve(const Args& args) {
  const std::vector<ServerGroup> groups = parse_groups(args);
  const Workload workload = parse_workload(args);
  Rack rack{groups, workload};
  const Watts budget{
      args.number("budget", rack.peak_demand().value() * 0.55)};

  // Noise-free training database, then one Solver call.
  PerfPowerDatabase db;
  for (std::size_t g = 0; g < rack.group_count(); ++g) {
    const PerfCurve& curve = rack.group_curve(g);
    std::vector<ServerSample> samples;
    for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const Watts p = curve.idle_power() +
                      (curve.peak_power() - curve.idle_power()) * f;
      samples.push_back({p, curve.throughput_at(p)});
    }
    db.add_training_samples({rack.group(g).model, rack.group_workload(g)},
                            samples);
  }
  const Allocation a =
      make_policy(PolicyKind::kGreenHetero)->allocate(rack, db, budget);
  std::printf("budget %.0f W across %d servers:\n", budget.value(),
              rack.total_servers());
  for (std::size_t g = 0; g < rack.group_count(); ++g) {
    std::printf("  PAR %-16s %5.1f%%  (%.0f W, %.1f W/server)\n",
                std::string(server_spec(rack.group(g).model).name).c_str(),
                a.ratios[g] * 100.0, a.ratios[g] * budget.value(),
                a.ratios[g] * budget.value() / rack.group(g).count);
  }
  std::printf("  battery charge share %.1f%%; predicted rack perf %.0f\n",
              (1.0 - a.ratio_sum()) * 100.0, a.predicted_perf);
  return 0;
}

int cmd_traces(const Args& args) {
  const std::string kind = args.get("trace", "high");
  const int days = static_cast<int>(args.number("days", 7.0));
  const Watts capacity{args.number("capacity", 2500.0)};
  const std::string out = args.get("out", "trace.csv");

  PowerTrace trace = [&] {
    if (kind == "low") {
      return generate_solar_trace(low_solar_model(capacity), days, 3);
    }
    if (kind == "load") {
      return generate_load_trace(LoadPatternModel{}, capacity, days, 5);
    }
    if (kind == "wind") {
      WindModel model;
      model.rated_power = capacity;
      return generate_wind_trace(model, days, 3);
    }
    return generate_solar_trace(high_solar_model(capacity), days, 3);
  }();
  trace.save_csv(out);
  const TraceStatistics stats = analyze_trace(trace);
  std::printf("%s trace: %d day(s), %zu samples -> %s\n", kind.c_str(), days,
              trace.size(), out.c_str());
  std::printf("  mean %.0f W, peak %.0f W, load factor %.0f%%\n",
              stats.mean.value(), stats.peak.value(),
              stats.load_factor * 100.0);
  std::printf("  variability (CV) %.2f, lag-1 autocorrelation %.2f\n",
              stats.variability, stats.autocorrelation);
  std::printf("  mean ramp %.0f W/sample (max %.0f W), zero output %.0f%% "
              "of the time\n",
              stats.mean_ramp.value(), stats.max_ramp.value(),
              stats.zero_fraction * 100.0);
  return 0;
}

int cmd_fleet(const Args& args) {
  const int racks = static_cast<int>(args.number("racks", 3.0));
  const double asymmetry = args.number("asymmetry", 0.5);
  const double hours = args.number("hours", 24.0);
  if (hours <= 0.0) {
    std::fprintf(stderr, "fleet: --hours must be positive\n");
    return 2;
  }
  const Watts total_grid{args.number("grid", 800.0 * racks)};
  const GridShareMode mode = args.get("mode", "proportional") == "static"
                                 ? GridShareMode::kStatic
                                 : GridShareMode::kDemandProportional;

  FaultPlan fault_plan;
  const std::string faults = args.get("faults", "");
  if (!faults.empty()) {
    fault_plan = FaultPlan::load_csv(faults);
    std::printf("fault plan: %zu event(s) from %s (every rack)\n",
                fault_plan.size(), faults.c_str());
  }

  const std::string spans_out = args.get("spans-out", "");
  const std::string profile_out = args.get("profile-out", "");
  const bool ledger = !args.get("ledger", "").empty();
  const bool check = !args.get("check", "").empty();
  const StreamOptions stream_opt = parse_stream_options(args);
  // Enough solar-trace days to cover the whole run, plus one of slack.
  const int solar_days = static_cast<int>(std::ceil(hours / 24.0)) + 1;
  std::vector<RackSimulator> sims;
  for (int i = 0; i < racks; ++i) {
    // Solar provisioning spread linearly around 1.8 kW by +/- asymmetry.
    const double spread =
        racks > 1 ? -1.0 + 2.0 * i / (racks - 1.0) : 0.0;
    const Watts solar_capacity{1800.0 * (1.0 + asymmetry * spread)};
    Rack rack{default_runtime_rack(), Workload::kSpecJbb};
    SimConfig cfg;
    cfg.controller.policy = PolicyKind::kGreenHetero;
    cfg.controller.seed = 40 + static_cast<std::uint64_t>(i);
    cfg.controller.solver_backend = parse_solver(args);
    cfg.telemetry.loss_ledger = ledger;
    cfg.telemetry.spans = !spans_out.empty();
    cfg.telemetry.profile = !profile_out.empty();
    cfg.telemetry.rollup_window_min = stream_opt.rollup_window_min;
    cfg.telemetry.flightrec_dir = stream_opt.flightrec_dir;
    cfg.check = check;
    cfg.faults = fault_plan;
    sims.emplace_back(
        std::move(rack),
        make_standard_plant(
            generate_solar_trace(high_solar_model(solar_capacity), solar_days,
                                 40 + static_cast<std::uint64_t>(i)),
            GridSpec{}),
        std::move(cfg));
  }
  FleetConfig fleet_cfg;
  fleet_cfg.total_grid_budget = total_grid;
  fleet_cfg.mode = mode;
  fleet_cfg.threads = static_cast<std::size_t>(args.number("threads", 0.0));
  fleet_cfg.shards = static_cast<std::size_t>(args.number("shards", 1.0));
  fleet_cfg.batch_solve = !args.get("batch-solve", "").empty();
  fleet_cfg.check = check;
  fleet_cfg.telemetry.profile = !profile_out.empty();
  const ResumeOptions resume_opt = parse_resume_options(args);
  if (stream_opt.stream) {
    telemetry::StreamSinkConfig sink_cfg{stream_opt.trace_out};
    sink_cfg.resume = resume_opt.snapshot.has_value();
    fleet_cfg.trace_stream = sink_cfg;
  }
  fleet_cfg.checkpoint_dir = resume_opt.checkpoint_dir;
  fleet_cfg.checkpoint_every = resume_opt.checkpoint_every;
  fleet_cfg.checkpoint_keep = resume_opt.checkpoint_keep;
  fleet_cfg.config_hash = scenario_hash(args);
  fleet_cfg.stop_flag = &g_stop;
  install_stop_handlers();
  fleet_cfg.metrics_out = stream_opt.metrics_out;
  fleet_cfg.metrics_flush_every = stream_opt.metrics_every;
  Fleet fleet{std::move(sims), fleet_cfg};
  // pretrain() always runs: a snapshot overwrites its effects, keeping the
  // fresh and resumed construction paths identical.
  fleet.pretrain();
  if (resume_opt.snapshot) {
    fleet.load_checkpoint(*resume_opt.snapshot);
    std::printf("resumed from %s (epoch %llu)\n",
                resume_opt.snapshot->path.string().c_str(),
                static_cast<unsigned long long>(
                    resume_opt.snapshot->epoch_index));
  }
  FleetReport report;
  try {
    report = fleet.run(Minutes{hours * 60.0});
  } catch (const check::InvariantViolation&) {
    throw;  // the offending rack already dumped its flight record
  } catch (const std::exception&) {
    fleet.dump_flight_records("run_abort");
    throw;
  }
  std::printf("fleet of %d racks, %s grid sharing, %.0f W total grid, "
              "%zu thread(s), %zu shard(s), %.0f h\n",
              racks, to_string(mode).c_str(), total_grid.value(),
              fleet.threads(), fleet.shards(), hours);
  std::printf("  total work:       %.0f\n", report.total_work);
  std::printf("  grid energy:      %.1f kWh ($%.2f)\n",
              report.grid_energy.value() / 1000.0, report.grid_cost);
  std::printf("  peak grid draw:   %.0f W of %.0f W budget\n",
              report.peak_grid_allocation.value(), total_grid.value());
  std::printf("  epoch store:      %.1f MiB (%zu racks x %zu epochs, SoA)\n",
              static_cast<double>(fleet.epoch_store_bytes()) /
                  (1024.0 * 1024.0),
              report.racks.size(),
              report.racks.empty() ? 0 : report.racks.front().epochs.size());
  // At datacenter scale a per-rack line each is noise; print the first few
  // and fold the rest into an aggregate line.
  constexpr std::size_t kMaxRackLines = 16;
  const std::size_t shown = std::min(report.racks.size(), kMaxRackLines);
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf("  rack %zu: work %.0f, EPU %.0f%%, battery %.2f cycles\n",
                i, report.racks[i].total_work,
                report.racks[i].overall_epu * 100.0,
                report.racks[i].battery_cycles);
  }
  if (report.racks.size() > shown) {
    double work = 0.0;
    double epu = 0.0;
    for (std::size_t i = shown; i < report.racks.size(); ++i) {
      work += report.racks[i].total_work;
      epu += report.racks[i].overall_epu;
    }
    std::printf("  ... %zu more rack(s): work %.0f, mean EPU %.0f%%\n",
                report.racks.size() - shown, work,
                epu / static_cast<double>(report.racks.size() - shown) *
                    100.0);
  }
  if (check) {
    unsigned long long checks = 0;
    unsigned long long substeps = 0;
    for (std::size_t i = 0; i < report.racks.size(); ++i) {
      if (const check::InvariantChecker* checker = fleet.rack(i).checker()) {
        checks += checker->checks_passed();
        substeps += checker->substeps_checked();
      }
    }
    std::printf("  invariants:       %llu checks over %llu substeps, all "
                "passed\n",
                checks, substeps);
  }
  if (telemetry::StreamingTraceSink* sink = fleet.stream()) {
    sink->close();
    print_stream_stats(*sink);
  } else if (!stream_opt.trace_out.empty()) {
    fleet.save_trace_jsonl(stream_opt.trace_out);
    std::printf("  merged trace written to %s\n",
                stream_opt.trace_out.c_str());
  }
  if (!stream_opt.rollup_out.empty()) {
    fleet.save_rollup_jsonl(stream_opt.rollup_out);
    std::printf("  merged rollup series written to %s\n",
                stream_opt.rollup_out.c_str());
  }
  if (!stream_opt.flightrec_dir.empty()) {
    std::size_t dumps = 0;
    for (std::size_t i = 0; i < report.racks.size(); ++i) {
      dumps += fleet.rack(i).telemetry().flightrec().dumps();
    }
    std::printf("  flight recorder: %zu dump(s) in %s\n", dumps,
                stream_opt.flightrec_dir.c_str());
  }
  if (!spans_out.empty()) {
    fleet.save_chrome_spans(spans_out);
    std::printf("  merged spans written to %s (one pid per rack)\n",
                spans_out.c_str());
  }
  if (!profile_out.empty()) {
    fleet.save_profile_json(profile_out);
    std::printf("  merged profile (%zu phases) written to %s (inspect with "
                "`greenhetero analyze --perf`)\n",
                fleet.profile_report().size(), profile_out.c_str());
  }
  if (!stream_opt.metrics_out.empty()) {
    // run() already wrote the merged snapshot (and the periodic ones).
    std::printf("  metrics written to %s\n", stream_opt.metrics_out.c_str());
  }
  if (report.interrupted) {
    fleet.dump_flight_records("interrupted");
    std::printf("interrupted; outputs cover the completed epochs%s\n",
                resume_opt.checkpoint_dir.empty() ? ""
                                                  : ", resume with --resume");
    return kExitInterrupted;
  }
  return 0;
}

int cmd_fuzz(const Args& args) {
  if (!args.get("crash", "").empty()) {
    // Crash-recovery mode: SIGKILL real fleet child processes mid-run,
    // resume them from their checkpoints and byte-compare the outputs
    // against an uninterrupted reference.
    check::CrashFuzzOptions options;
    options.binary = self_exe_path();
    options.work_dir = args.get("crash-dir", "crash-fuzz");
    options.seed = static_cast<std::uint64_t>(args.number("seed", 1.0));
    options.runs = static_cast<int>(args.number("runs", 5.0));
    options.max_kills = static_cast<int>(args.number("max-kills", 3.0));
    options.log = &std::cout;
    const check::CrashFuzzReport report = check::run_crash_fuzzer(options);
    if (report.ok() && report.runs_executed > 0) {
      std::printf("crash fuzz: %d run(s) clean, %d kill(s) delivered, %d "
                  "resume(s) (seed %llu)\n",
                  report.runs_executed, report.kills_delivered,
                  report.resumes,
                  static_cast<unsigned long long>(options.seed));
      return 0;
    }
    if (report.runs_executed == 0) {
      std::printf("crash fuzz: skipped (platform unsupported)\n");
      return 0;
    }
    for (const std::string& failure : report.failures) {
      std::printf("crash fuzz: %s\n", failure.c_str());
    }
    std::printf("crash fuzz: %d of %d run(s) FAILED; outputs kept under %s\n",
                report.runs_failed, report.runs_executed,
                options.work_dir.string().c_str());
    return 4;
  }
  // Fault begin/end warnings from randomized plans would drown the per-run
  // progress lines; failures surface through the fuzz report instead.
  Logger::instance().set_level(LogLevel::kError);
  check::FuzzOptions options;
  options.seed = static_cast<std::uint64_t>(args.number("seed", 1.0));
  options.runs = static_cast<int>(args.number("runs", 25.0));
  options.only_run = static_cast<int>(args.number("run", -1.0));
  options.racks = static_cast<int>(args.number("racks", -1.0));
  options.epochs = static_cast<int>(args.number("epochs", -1.0));
  options.max_faults = static_cast<int>(args.number("max-faults", -1.0));
  options.shards = static_cast<int>(args.number("shards", -1.0));
  // --solver on: solver-focused mode — every rack runs a solver-driven
  // policy on the analytic backend and each scenario is re-executed cold
  // and batched at 1 and 4 threads, all byte-compared to the warm
  // sequential reference.
  options.solver = !args.get("solver", "").empty();
  options.log = &std::cout;

  const check::FuzzReport report = check::run_fuzzer(options);
  if (report.ok()) {
    std::printf("fuzz: %d run(s) clean (seed %llu)\n", report.runs_executed,
                static_cast<unsigned long long>(options.seed));
    return 0;
  }
  std::printf("fuzz: run %d FAILED: %s\n",
              report.first_failure->scenario.run_index,
              report.first_failure->what.c_str());
  std::printf("fuzz: minimal repro: %s\n",
              report.shrunk->scenario.command_line().c_str());
  const std::string repro_out = args.get("repro-out", "");
  if (!repro_out.empty()) {
    util::write_file_atomic(repro_out,
                            report.shrunk->scenario.command_line() + "\n" +
                                report.shrunk->what + "\n");
    std::printf("fuzz: repro written to %s\n", repro_out.c_str());
  }
  return 4;
}

/// Dispatched before parse_args (which rejects positional arguments): the
/// two report paths are positionals, everything after them is ordinary
/// --flag parsing.
int cmd_benchdiff(int argc, char** argv) {
  if (argc < 4 || std::strncmp(argv[2], "--", 2) == 0 ||
      std::strncmp(argv[3], "--", 2) == 0) {
    std::fprintf(stderr,
                 "usage: greenhetero benchdiff CURRENT.json BASELINE.json "
                 "[--threshold T] [--trajectory FILE.jsonl] "
                 "[--date YYYY-MM-DD]\n");
    return 2;
  }
  const Args args = parse_args(argc, argv, 4);
  const double threshold =
      analysis::parse_bench_threshold(args.get("threshold", "10%"));
  const analysis::BenchComparison comparison = analysis::compare_bench(
      analysis::load_bench_report(argv[2]),
      analysis::load_bench_report(argv[3]), threshold);
  analysis::print_benchdiff(std::cout, comparison);

  const std::string trajectory = args.get("trajectory", "");
  if (!trajectory.empty()) {
    std::string date = args.get("date", "");
    if (date.empty()) {
      const std::time_t now = std::time(nullptr);
      std::tm tm{};
#if defined(_WIN32)
      gmtime_s(&tm, &now);
#else
      gmtime_r(&now, &tm);
#endif
      char buffer[16];
      std::strftime(buffer, sizeof(buffer), "%Y-%m-%d", &tm);
      date = buffer;
    }
    analysis::append_trajectory(
        trajectory, analysis::trajectory_row(comparison, date,
                                             telemetry::build_info_json()));
    std::printf("trajectory row appended to %s\n", trajectory.c_str());
  }
  return comparison.drifted() ? 3 : 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: greenhetero "
               "<simulate|fleet|fuzz|analyze|benchdiff|policies|solve|traces|"
               "info> [--option value ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  g_argv0 = argv[0];
  const std::string command = argv[1];
  try {
    // benchdiff takes positional file arguments, so it dispatches before
    // the --flag-only parse below.
    if (command == "benchdiff") return cmd_benchdiff(argc, argv);
    const Args args = parse_args(argc, argv, 2);
    if (command == "info") return cmd_info(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "policies") return cmd_policies(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "traces") return cmd_traces(args);
    if (command == "fleet") return cmd_fleet(args);
    if (command == "fuzz") return cmd_fuzz(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
