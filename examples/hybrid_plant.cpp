// Hybrid PV + wind plant: the paper's green datacenters draw from "PV and
// wind"; wind blows at night, so a hybrid plant flattens the overnight
// battery drain and the grid fallback the solar-only runs show.  Same rack,
// same total green energy budget, three plant mixes.
#include <cstdio>

#include "power/carbon.h"
#include "server/rack.h"
#include "sim/rack_simulator.h"
#include "trace/load_pattern.h"
#include "trace/solar.h"
#include "trace/statistics.h"
#include "trace/wind.h"

namespace {

using namespace greenhetero;

struct MixResult {
  double work;
  double grid_kwh;
  double battery_cycles;
  double co2_kg;
  double zero_fraction;
};

MixResult run_mix(double solar_capacity, double wind_rated) {
  const PowerTrace solar =
      generate_solar_trace(high_solar_model(Watts{solar_capacity}), 4, 3);
  WindModel wind_model;
  wind_model.rated_power = Watts{wind_rated};
  const PowerTrace wind = generate_wind_trace(wind_model, 4, 3);
  const PowerTrace production =
      wind_rated > 0.0
          ? (solar_capacity > 0.0 ? combine_traces(solar, wind) : wind)
          : solar;

  Rack rack{{{ServerModel::kXeonE5_2620, 5}, {ServerModel::kCoreI5_4460, 5}},
            Workload::kSpecJbb};
  SimConfig cfg;
  cfg.controller.policy = PolicyKind::kGreenHetero;
  cfg.controller.seed = 27;
  cfg.demand_trace =
      generate_load_trace(LoadPatternModel{}, rack.peak_demand(), 4, 5);
  GridSpec grid;
  grid.budget = Watts{1000.0};
  RackSimulator sim{std::move(rack), make_standard_plant(production, grid),
                    std::move(cfg)};
  sim.pretrain();
  const RunReport report = sim.run(Minutes{3.0 * 24.0 * 60.0});
  const TraceStatistics stats = analyze_trace(production);
  return MixResult{report.total_work, report.grid_energy.value() / 1000.0,
                   report.battery_cycles,
                   carbon_report(report.ledger).total_kg,
                   stats.zero_fraction};
}

}  // namespace

int main() {
  std::printf("=== Hybrid PV + wind plant (3 days, SPECjbb, GreenHetero) "
              "===\n\n");
  std::printf("%-22s %12s %11s %12s %10s %12s\n", "plant mix", "work",
              "grid(kWh)", "batt cycles", "CO2(kg)", "dark time");
  struct Mix {
    const char* name;
    double solar;
    double wind;
  };
  for (const Mix& mix : {Mix{"solar 2500 W", 2500.0, 0.0},
                         Mix{"solar 1500 + wind 1000", 1500.0, 1000.0},
                         Mix{"wind 2500 W", 0.0, 2500.0}}) {
    const MixResult r = run_mix(mix.solar, mix.wind);
    std::printf("%-22s %12.0f %11.1f %12.2f %10.1f %11.0f%%\n", mix.name,
                r.work, r.grid_kwh, r.battery_cycles, r.co2_kg,
                r.zero_fraction * 100.0);
  }
  std::printf("\nReading: mixing wind in cuts the zero-output hours, which "
              "shrinks overnight battery cycling and grid fallback at the "
              "same nameplate capacity.\n");
  return 0;
}
