// Workload placement: composing job-to-machine mapping (the Whare-Map idea
// the paper cites) with GreenHetero's power allocation.  Two workloads, two
// server groups, one scarce budget — the optimizer decides who runs where
// *and* who gets which watts.
#include <cstdio>
#include <string>

#include "core/decision_output.h"
#include "core/placement.h"
#include "server/combinations.h"
#include "sim/rack_simulator.h"

int main() {
  using namespace greenhetero;

  Rack rack{default_runtime_rack(), Workload::kSpecJbb};
  const std::vector<Workload> jobs = {Workload::kStreamcluster,
                                      Workload::kSwaptions};
  const Watts budget{900.0};

  // Train the database for every candidate pairing (one training run per
  // (server type, workload) pair — here done through a pretraining helper
  // rack per workload).
  PerfPowerDatabase db;
  for (Workload w : jobs) {
    Rack trainer{default_runtime_rack(), w};
    SimConfig cfg;
    cfg.controller.seed = 8;
    RackSimulator sim{std::move(trainer),
                      make_fixed_budget_plant(budget, Minutes{100.0}),
                      std::move(cfg)};
    sim.pretrain();
    for (const ProfileKey& key : sim.controller().database().keys()) {
      const ProfileRecord& rec = sim.controller().database().record(key);
      std::vector<ServerSample> samples;
      for (std::size_t i = 0; i < rec.powers.size(); ++i) {
        samples.push_back({Watts{rec.powers[i]}, rec.perfs[i]});
      }
      db.add_training_samples(key, samples);
    }
  }

  const PlacementResult best = optimize_placement(rack, jobs, db, budget);
  std::printf("budget %.0f W; candidate jobs: %s + %s\n\n", budget.value(),
              std::string(workload_spec(jobs[0]).name).c_str(),
              std::string(workload_spec(jobs[1]).name).c_str());
  for (std::size_t g = 0; g < best.assignment.size(); ++g) {
    std::printf("  group %zu (%s) runs %-16s PAR %5.1f%%\n", g,
                std::string(server_spec(rack.group(g).model).name).c_str(),
                std::string(workload_spec(best.assignment[g]).name).c_str(),
                best.allocation.ratios[g] * 100.0);
  }
  std::printf("\npredicted rack performance: %.0f\n", best.predicted_perf);

  // Apply the assignment and show the SPC instruction stream.
  for (std::size_t g = 0; g < best.assignment.size(); ++g) {
    rack.set_group_workload(g, best.assignment[g]);
  }
  std::printf("\nSPC instructions:\n");
  for (const FrequencyInstruction& inst :
       decision_output(rack, best.allocation, budget)) {
    std::printf("  %s\n", inst.to_string().c_str());
  }
  return 0;
}
