// Controller restarts: the performance-power database persists, so a
// rebooted controller skips every training run it has already paid for.
// This example runs a morning shift, saves the database, "reboots" into a
// fresh controller that loads it, and shows the afternoon shift starting
// with zero training epochs.
#include <cstdio>
#include <filesystem>

#include "server/combinations.h"
#include "sim/rack_simulator.h"

int main() {
  using namespace greenhetero;

  const auto db_path =
      std::filesystem::temp_directory_path() / "greenhetero_database.csv";

  int morning_training = 0;
  {
    // Morning shift: a fresh deployment trains SPECjbb, then switches to
    // Streamcluster at 10:00 (another training run).
    Rack rack{default_runtime_rack(), Workload::kSpecJbb};
    SimConfig cfg;
    cfg.controller.policy = PolicyKind::kGreenHetero;
    cfg.controller.seed = 3;
    cfg.workload_schedule = {{Minutes{120.0}, Workload::kStreamcluster}};
    RackSimulator sim{std::move(rack),
                      make_fixed_budget_plant(Watts{800.0}, Minutes{600.0}),
                      std::move(cfg)};
    const RunReport report = sim.run(Minutes{5.0 * 60.0});
    for (const auto& e : report.epochs) morning_training += e.training;
    sim.controller().database().save(db_path);
    std::printf("morning: %zu epochs, %d training runs; database saved "
                "(%zu records) -> %s\n",
                report.epochs.size(), morning_training,
                sim.controller().database().size(), db_path.c_str());
  }

  {
    // Afternoon shift after a reboot: load the database and run the same
    // two workloads — no training epoch needed.
    Rack rack{default_runtime_rack(), Workload::kStreamcluster};
    SimConfig cfg;
    cfg.controller.policy = PolicyKind::kGreenHetero;
    cfg.controller.seed = 4;
    cfg.workload_schedule = {{Minutes{120.0}, Workload::kSpecJbb}};
    RackSimulator sim{std::move(rack),
                      make_fixed_budget_plant(Watts{800.0}, Minutes{600.0}),
                      std::move(cfg)};
    sim.controller().mutable_database() = PerfPowerDatabase::load(db_path);
    const RunReport report = sim.run(Minutes{5.0 * 60.0});
    int afternoon_training = 0;
    for (const auto& e : report.epochs) afternoon_training += e.training;
    std::printf("afternoon (restarted): %zu epochs, %d training runs — the "
                "loaded database covers both workloads\n",
                report.epochs.size(), afternoon_training);
    std::printf("mean throughput after restart: %.0f\n",
                report.mean_throughput());
  }

  std::filesystem::remove(db_path);
  return 0;
}
