// Quickstart: simulate one day of a heterogeneous green rack under the
// GreenHetero controller.
//
//   1. describe the rack (two server types, one workload),
//   2. give it a power plant (solar trace + battery + budgeted grid),
//   3. run the simulator and read the report.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "server/rack.h"
#include "sim/rack_simulator.h"
#include "trace/solar.h"

int main() {
  using namespace greenhetero;
  using namespace greenhetero::literals;

  // 1. A rack: five dual-socket Xeons and five desktop i5 boxes, all
  //    serving SPECjbb.
  Rack rack{{{ServerModel::kXeonE5_2620, 5}, {ServerModel::kCoreI5_4460, 5}},
            Workload::kSpecJbb};
  std::printf("rack: %d servers, peak demand %.0f W, idle demand %.0f W\n",
              rack.total_servers(), rack.peak_demand().value(),
              rack.idle_demand().value());

  // 2. A power plant: one week of synthetic high-yield solar at 2.5 kW peak,
  //    the paper's 12 kWh battery (40% DoD), and a 1 kW grid budget.
  GridSpec grid;
  grid.budget = 1000.0_W;
  RackPowerPlant plant =
      make_standard_plant(high_solar_week(2500.0_W, /*seed=*/3), grid);

  // 3. The controller: the full GreenHetero policy, 15-minute epochs.
  SimConfig config;
  config.controller.policy = PolicyKind::kGreenHetero;
  config.controller.seed = 42;
  RackSimulator sim{std::move(rack), std::move(plant), std::move(config)};
  sim.pretrain();  // one training run per (server type, workload)

  const RunReport report = sim.run(Minutes{24.0 * 60.0});

  std::printf("simulated %zu epochs over 24 h\n", report.epochs.size());
  std::printf("  mean rack throughput: %.0f jops\n", report.mean_throughput());
  std::printf("  effective power utilisation: %.0f%%\n",
              report.overall_epu * 100.0);
  std::printf("  renewable energy used: %.1f kWh of %.1f kWh produced\n",
              (report.ledger.renewable_to_load() +
               report.ledger.renewable_to_battery())
                      .value() /
                  1000.0,
              report.ledger.renewable_produced().value() / 1000.0);
  std::printf("  grid energy: %.1f kWh ($%.2f with demand charges)\n",
              report.grid_energy.value() / 1000.0, report.grid_cost);
  std::printf("  battery wear: %.2f DoD-deep cycles\n", report.battery_cycles);

  // Each epoch record carries the full decision trail; dump a midday one.
  const EpochRecord& noon = report.epochs[48];
  std::printf("epoch @ noon: case %s, budget %.0f W, PAR(E5-2620) %.0f%%\n",
              to_string(noon.source_case), noon.budget.value(),
              (noon.ratios.empty() ? 0.0 : noon.ratios[0]) * 100.0);
  return 0;
}
