// Policy comparison on a user-defined rack: run all five Table III policies
// on the same workload and supply level, print the league table, and export
// the GreenHetero run's per-epoch trail as CSV for plotting.
//
// Usage: policy_comparison [workload] [budget_watts]
//   e.g. policy_comparison Streamcluster 700
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/policies.h"
#include "server/rack.h"
#include "sim/rack_simulator.h"

int main(int argc, char** argv) {
  using namespace greenhetero;

  const Workload workload =
      argc > 1 ? workload_by_name(argv[1]) : Workload::kStreamcluster;
  const double budget_watts = argc > 2 ? std::atof(argv[2]) : 700.0;

  const std::vector<ServerGroup> groups = {{ServerModel::kXeonE5_2620, 5},
                                           {ServerModel::kCoreI5_4460, 5}};
  std::printf("workload %s, green budget %.0f W, rack of 10\n\n",
              std::string(workload_spec(workload).name).c_str(),
              budget_watts);
  std::printf("%-16s %14s %8s %10s\n", "policy", "throughput", "EPU",
              "vs Uniform");

  double uniform_throughput = 0.0;
  for (PolicyKind policy : kAllPolicies) {
    Rack rack{groups, workload};
    SimConfig config;
    config.controller.policy = policy;
    config.controller.seed = 7;
    RackSimulator sim{std::move(rack),
                      make_fixed_budget_plant(Watts{budget_watts},
                                              Minutes{10.0 * 60.0}),
                      std::move(config)};
    sim.pretrain();
    const RunReport report = sim.run(Minutes{8.0 * 60.0});
    if (policy == PolicyKind::kUniform) {
      uniform_throughput = report.mean_throughput();
    }
    std::printf("%-16s %14.0f %7.0f%% %9.2fx\n",
                std::string(to_string(policy)).c_str(),
                report.mean_throughput(), report.overall_epu * 100.0,
                uniform_throughput > 0.0
                    ? report.mean_throughput() / uniform_throughput
                    : 1.0);

    if (policy == PolicyKind::kGreenHetero) {
      const auto csv_path =
          std::filesystem::temp_directory_path() / "greenhetero_epochs.csv";
      report.to_csv().save(csv_path);
      std::printf("  (per-epoch trail written to %s)\n", csv_path.c_str());
    }
  }
  return 0;
}
