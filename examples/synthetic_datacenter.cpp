// Datacenter-scale study: generate a fleet of racks whose heterogeneity
// follows the Figure 1 distribution (2-5 server configurations per
// datacenter), give each rack its own plant — the paper's distributed
// rack-level deployment — and compare fleet-wide GreenHetero vs Uniform.
#include <cstdio>
#include <vector>

#include "server/rack.h"
#include "sim/rack_simulator.h"
#include "trace/heterogeneity.h"
#include "trace/load_pattern.h"
#include "trace/solar.h"
#include "util/rng.h"

namespace {

using namespace greenhetero;

// The paper caps a PDU rack at 3 server types; datacenters with more
// configurations spread them across racks.
std::vector<std::vector<ServerGroup>> racks_for_config_count(int configs,
                                                             Rng& rng) {
  const ServerModel cpu_models[] = {
      ServerModel::kXeonE5_2620, ServerModel::kXeonE5_2650,
      ServerModel::kXeonE5_2603, ServerModel::kCoreI7_8700K,
      ServerModel::kCoreI5_4460};
  // Pick `configs` distinct CPU models.
  std::vector<ServerModel> chosen;
  while (static_cast<int>(chosen.size()) < configs) {
    const ServerModel pick = cpu_models[rng.uniform_int(0, 4)];
    bool seen = false;
    for (ServerModel m : chosen) seen |= m == pick;
    if (!seen) chosen.push_back(pick);
  }
  // Pack into racks of at most 3 types, 5 servers per type.
  std::vector<std::vector<ServerGroup>> racks;
  for (std::size_t i = 0; i < chosen.size(); i += 3) {
    std::vector<ServerGroup> groups;
    for (std::size_t j = i; j < std::min(i + 3, chosen.size()); ++j) {
      groups.push_back({chosen[j], 5});
    }
    racks.push_back(std::move(groups));
  }
  return racks;
}

double run_fleet(PolicyKind policy, std::uint64_t seed) {
  Rng rng(seed);
  double fleet_work = 0.0;
  constexpr int kDatacenters = 4;
  for (int dc = 0; dc < kDatacenters; ++dc) {
    const int configs = sample_config_count(seed, static_cast<std::uint64_t>(dc));
    Rng dc_rng = rng.fork(static_cast<std::uint64_t>(dc));
    for (auto& groups : racks_for_config_count(configs, dc_rng)) {
      Rack rack{groups, Workload::kSpecJbb};
      SimConfig config;
      config.controller.policy = policy;
      config.controller.seed = seed + static_cast<std::uint64_t>(dc);
      config.demand_trace = generate_load_trace(
          LoadPatternModel{}, rack.peak_demand(), 2,
          seed * 31 + static_cast<std::uint64_t>(dc));
      GridSpec grid;
      grid.budget = Watts{100.0 * rack.total_servers()};
      // Each rack owns a proportionally sized plant (distributed design).
      const Watts solar_capacity{250.0 * rack.total_servers()};
      RackSimulator sim{
          std::move(rack),
          make_standard_plant(
              generate_solar_trace(high_solar_model(solar_capacity), 2,
                                   seed + static_cast<std::uint64_t>(dc)),
              grid),
          std::move(config)};
      sim.pretrain();
      fleet_work += sim.run(Minutes{24.0 * 60.0}).total_work;
    }
  }
  return fleet_work;
}

}  // namespace

int main() {
  std::printf("=== Synthetic heterogeneous datacenter fleet (Figure 1 "
              "distribution) ===\n\n");
  std::printf("4 datacenters, rack heterogeneity sampled from the Google "
              "survey;\neach rack has its own solar+battery+grid plant "
              "(distributed rack-level controllers).\n\n");
  const double uniform = run_fleet(PolicyKind::kUniform, 123);
  const double gh = run_fleet(PolicyKind::kGreenHetero, 123);
  std::printf("fleet 24h useful work, Uniform:     %12.0f jop-hours\n",
              uniform);
  std::printf("fleet 24h useful work, GreenHetero: %12.0f jop-hours\n", gh);
  std::printf("fleet-wide gain: %.2fx\n", uniform > 0.0 ? gh / uniform : 0.0);
  return 0;
}
