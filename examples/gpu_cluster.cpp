// GPU-accelerated green rack: the Comb6 scenario (Xeons + Titan Xp nodes)
// running Rodinia kernels.  Shows how the allocation flips with workload
// character: GreenHetero feeds the GPUs first on massively parallel kernels
// (Srad_v1) and balances on CPU-competitive ones (Cfd).
#include <cstdio>
#include <string>

#include "server/combinations.h"
#include "sim/rack_simulator.h"

int main() {
  using namespace greenhetero;

  const auto& comb6 = combination_by_name("Comb6");
  std::printf("=== GPU cluster example: 5x Xeon E5-2620 + 5x Titan Xp ===\n\n");
  std::printf("%-24s %12s %12s %16s %16s\n", "workload", "budget(W)",
              "throughput", "PAR(Xeon)", "PAR(TitanXp)");

  for (Workload w : comb6.workloads) {
    Rack rack{comb6.groups, w};
    const Watts budget = rack.peak_demand() * 0.5;  // scarce supply
    SimConfig config;
    config.controller.policy = PolicyKind::kGreenHetero;
    config.controller.seed = 5;
    RackSimulator sim{std::move(rack),
                      make_fixed_budget_plant(budget, Minutes{6.0 * 60.0}),
                      std::move(config)};
    sim.pretrain();
    const RunReport report = sim.run(Minutes{4.0 * 60.0});
    std::printf("%-24s %12.0f %12.0f %15.0f%% %15.0f%%\n",
                std::string(workload_spec(w).name).c_str(), budget.value(),
                report.mean_throughput(), report.mean_ratio(0) * 100.0,
                report.mean_ratio(1) * 100.0);
  }
  std::printf("\nSrad_v1 routes nearly all power to the GPU group; Cfd "
              "splits, because its CPU and GPU throughput are comparable "
              "per watt.\n");
  return 0;
}
