// Capacity-planning study: how much solar and battery does a rack need?
//
// Sweeps solar array capacity and battery size for a week-long run under the
// GreenHetero controller and reports the operator-facing numbers: renewable
// utilisation, grid energy and cost, battery wear.  The kind of what-if a
// datacenter operator would run before provisioning a green rack.
#include <cstdio>

#include "server/rack.h"
#include "sim/rack_simulator.h"
#include "trace/load_pattern.h"
#include "trace/solar.h"

namespace {

using namespace greenhetero;

struct SizingResult {
  double mean_throughput;
  double renewable_utilization;
  double grid_kwh;
  double grid_cost;
  double battery_cycles_per_week;
};

SizingResult run_sizing(Watts solar_capacity, double battery_kwh) {
  Rack rack{{{ServerModel::kXeonE5_2620, 5}, {ServerModel::kCoreI5_4460, 5}},
            Workload::kSpecJbb};
  SimConfig config;
  config.controller.policy = PolicyKind::kGreenHetero;
  config.controller.seed = 9;
  config.demand_trace =
      generate_load_trace(LoadPatternModel{}, rack.peak_demand(), 7, 5);

  BatterySpec battery = paper_battery_spec();
  battery.capacity = WattHours{battery_kwh * 1000.0};
  GridSpec grid;
  grid.budget = Watts{1000.0};
  RackPowerPlant plant{SolarArray{high_solar_week(solar_capacity, 3)},
                       Battery{battery}, GridSupply{grid}};

  RackSimulator sim{std::move(rack), std::move(plant), std::move(config)};
  sim.pretrain();
  const RunReport report = sim.run(Minutes{7.0 * 24.0 * 60.0});
  return SizingResult{report.mean_throughput(),
                      report.ledger.renewable_utilization(),
                      report.grid_energy.value() / 1000.0, report.grid_cost,
                      report.battery_cycles};
}

}  // namespace

int main() {
  std::printf("=== Green rack sizing study (1 week, SPECjbb, GreenHetero) "
              "===\n\n");
  std::printf("%10s %10s %12s %10s %10s %10s %12s\n", "solar(W)",
              "batt(kWh)", "throughput", "renew.use", "grid(kWh)", "cost($)",
              "cycles/wk");
  for (double solar : {1500.0, 2500.0, 3500.0}) {
    for (double battery : {6.0, 12.0, 24.0}) {
      const SizingResult r = run_sizing(Watts{solar}, battery);
      std::printf("%10.0f %10.0f %12.0f %9.0f%% %10.1f %10.2f %12.2f\n",
                  solar, battery, r.mean_throughput,
                  r.renewable_utilization * 100.0, r.grid_kwh, r.grid_cost,
                  r.battery_cycles_per_week);
    }
  }
  std::printf("\nReading the table: bigger arrays raise renewable use until "
              "the battery can no longer absorb midday surplus; battery "
              "wear shows the lifetime cost of each configuration "
              "(1300 rated cycles).\n");
  return 0;
}
